"""Chaos harness: run a variant x fault-profile matrix and check it.

Each cell runs one stencil variant under one fault profile on a fresh
simulator and is judged against the profile's ``expect``:

``"converge"``
    The run must finish and its gathered result must equal the serial
    :func:`~repro.stencil.reference.jacobi_reference` *exactly*
    (``np.array_equal``) — transient faults are allowed to cost time,
    never numerics.
``"diagnostic"``
    The run must END in a :class:`~repro.sim.WatchdogError` (or a
    :class:`~repro.faults.inject.SignalWaitTimeout`) rather than hang
    or silently produce wrong data.  Variants the injected fault cannot
    reach (e.g. a lost NVSHMEM signal against a copy-based variant) are
    held to ``"converge"`` instead.  Under a fail-stop crash plan a
    post-crash :class:`~repro.sim.DeadlockError` also counts — a dead
    PE legitimately strands joiners with no watched signal in sight —
    and the cell error names the dead PEs.
``"recover"``
    The cell runs through :func:`repro.recover.run_with_recovery`: the
    crash must fire, recovery must restart from a checkpoint, and the
    final field must be byte-identical to the fault-free reference.

The report is a plain JSON-safe dict assembled in submission order
with sorted keys throughout — byte-identical across repeated runs of
the same matrix and across ``--jobs`` settings (cells fan out through
:class:`~repro.perf.sweep.SweepRunner`, which preserves the same
contract for the merged metrics registry).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.faults.profiles import get_plan, parse_profile
from repro.obs.stablejson import dumps_stable
from repro.perf.sweep import SweepRunner

__all__ = ["DEFAULT_MATRIX_PROFILES", "render_report", "run_cell", "run_matrix"]

#: profiles exercised when the CLI is invoked without ``--profiles``
DEFAULT_MATRIX_PROFILES = ("none", "transient", "degraded", "link_down", "lost_signal")


def run_cell(
    variant: str,
    profile: str,
    shape: tuple[int, ...],
    num_gpus: int,
    iterations: int,
) -> dict[str, Any]:
    """Run one (variant, profile) cell and judge it.  Top-level and
    picklable so :class:`SweepRunner` can fan cells out to processes."""
    # imports kept inside the worker: the harness module itself must
    # stay importable without pulling the whole simulator stack in
    import repro.stencil.variants  # noqa: F401 - populate the registry
    from repro.faults.inject import DeliveryError, SignalWaitTimeout
    from repro.recover import UnrecoverableCrashError, run_with_recovery
    from repro.sim import DeadlockError, WatchdogError
    from repro.stencil.base import VARIANTS, StencilConfig, default_initial
    from repro.stencil.reference import jacobi_reference

    plan = get_plan(profile)
    cls = VARIANTS[variant]
    expect = plan.expect
    if expect == "diagnostic" and plan.deliveries and not cls.uses_nvshmem:
        # delivery faults ride NVSHMEM messages; this variant sends
        # none, so the fault never fires and the run must just converge
        expect = "converge"

    config = StencilConfig(
        global_shape=tuple(shape),
        num_gpus=num_gpus,
        iterations=iterations,
        fault_profile=profile,
    )
    cell: dict[str, Any] = {
        "variant": variant,
        "profile": profile,
        "expect": expect,
        "status": None,
        "ok": False,
        "sim_time_us": None,
        "error": None,
        "faults": None,
        "recover": None,
    }

    def dead_pes(injector) -> str:
        if injector is None or not injector.crashed:
            return ""
        dead = ", ".join(f"pe{pe} at t={t:.3f}us"
                         for pe, t in sorted(injector.crashed.items()))
        return f" — dead PEs: {dead}"

    if expect == "recover":
        try:
            outcome = run_with_recovery(cls, config, plan=plan)
        except UnrecoverableCrashError as exc:
            cell["status"] = "diagnostic"
            cell["error"] = str(exc).splitlines()[0]
            return cell
        cell["recover"] = outcome.report()
        cell["faults"] = outcome.faults
        cell["sim_time_us"] = outcome.total_time_us
        expected = jacobi_reference(
            default_initial(config.global_shape, config.seed), config.iterations
        )
        if outcome.result is not None and not np.array_equal(outcome.result, expected):
            cell["status"] = "diverged"
        elif outcome.recovered:
            cell["status"] = "recovered"
            cell["ok"] = True
        else:
            # the seeded crash never landed inside the run — converged,
            # but the profile did not exercise recovery: not ok
            cell["status"] = "converged"
            cell["ok"] = not plan.crashes
        return cell

    instance = cls(config)
    try:
        result = instance.run()
    except (WatchdogError, SignalWaitTimeout) as exc:
        cell["status"] = "diagnostic"
        cell["error"] = str(exc).splitlines()[0] + dead_pes(instance.faults)
        cell["ok"] = expect == "diagnostic"
    except DeadlockError as exc:
        if plan.crashes and instance.faults is not None and instance.faults.crashed:
            # a dead PE strands joiners with no watched flag in sight:
            # the deadlock IS the crash diagnostic
            cell["status"] = "diagnostic"
            cell["error"] = str(exc).splitlines()[0] + dead_pes(instance.faults)
            cell["ok"] = expect == "diagnostic"
        else:
            cell["status"] = "failed"
            cell["error"] = str(exc).splitlines()[0]
    except DeliveryError as exc:
        cell["status"] = "failed"
        cell["error"] = str(exc).splitlines()[0]
    else:
        expected = jacobi_reference(
            default_initial(config.global_shape, config.seed), config.iterations
        )
        if result.result is not None and not np.array_equal(result.result, expected):
            cell["status"] = "diverged"
        else:
            cell["status"] = "converged"
            cell["ok"] = expect == "converge"
        cell["sim_time_us"] = result.total_time_us
    if instance.faults is not None:
        cell["faults"] = instance.faults.summary()
    return cell


def run_matrix(
    variants: Sequence[str],
    profiles: Sequence[str],
    *,
    shape: tuple[int, ...] = (34, 66),
    num_gpus: int = 2,
    iterations: int = 6,
    jobs: int = 1,
) -> dict[str, Any]:
    """Run the full matrix and assemble the (byte-stable) report."""
    for profile in profiles:
        get_plan(profile)  # fail on typos before any cell runs
    cells = [
        (variant, profile, tuple(shape), num_gpus, iterations)
        for variant in variants
        for profile in profiles
    ]
    runner = SweepRunner(jobs=jobs)
    rows = runner.map(run_cell, cells)
    failures = [
        f"{row['variant']}/{row['profile']}: expected {row['expect']}, got {row['status']}"
        for row in rows
        if not row["ok"]
    ]
    return {
        "matrix": {
            "variants": list(variants),
            "profiles": list(profiles),
            "shape": list(shape),
            "num_gpus": num_gpus,
            "iterations": iterations,
            "seeds": {spec: parse_profile(spec)[1] for spec in profiles},
        },
        "cells": rows,
        "failures": failures,
        "ok": not failures,
    }


def render_report(report: dict[str, Any]) -> str:
    """Canonical byte-stable JSON text of a matrix report."""
    return dumps_stable(report)
