"""Declarative fault plans.

A :class:`FaultPlan` is an immutable description of *what* to break and
*how hard*: link degradation rules, straggler PEs, and transient
delivery failures, plus the resilience knobs (retry budget, backoff,
wait timeouts, watchdog budget) the runtime uses to survive them.

Plans carry an explicit ``seed``; the :class:`~repro.faults.inject.
FaultInjector` derives one PRNG substream per injection site from it
(``sha256(seed:site)``) so fault sequences are reproducible regardless
of event interleaving, worker-process fan-out, or unrelated code using
``random``.  Nothing in this module touches global PRNG state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DeliveryFault", "FaultPlan", "LinkFault", "PECrashFault",
           "StragglerFault"]


def _check_prob(value: float, what: str) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{what} must be a probability in [0, 1], got {value!r}")


def _wild_match(pattern: int | None, value: int) -> bool:
    return pattern is None or pattern == value


@dataclass(frozen=True)
class LinkFault:
    """Degrade (or kill) the link between two GPUs.

    ``src``/``dst`` of ``None`` are wildcards matching any GPU.  Rules
    are symmetric by default (an NVLink failure affects both
    directions); host links and loopback are never matched — the host
    path is the staged-copy escape hatch and must stay reliable.
    """

    src: int | None = None
    dst: int | None = None
    #: multiply bandwidth by this factor (0 < scale <= 1 degrades)
    bandwidth_scale: float = 1.0
    #: add this much latency to every transfer (µs)
    extra_latency_us: float = 0.0
    #: per-transfer random extra latency drawn uniformly from [0, jitter_us)
    jitter_us: float = 0.0
    #: link is permanently down: transfers must stage through the host
    down: bool = False
    symmetric: bool = True

    def __post_init__(self) -> None:
        if not (self.bandwidth_scale > 0):
            raise ValueError(f"bandwidth_scale must be positive, got {self.bandwidth_scale!r}")
        if self.extra_latency_us < 0 or self.jitter_us < 0:
            raise ValueError("extra_latency_us and jitter_us must be non-negative")

    def matches(self, src: int, dst: int) -> bool:
        if src == dst or src < 0 or dst < 0:
            return False
        if _wild_match(self.src, src) and _wild_match(self.dst, dst):
            return True
        return self.symmetric and _wild_match(self.src, dst) and _wild_match(self.dst, src)


@dataclass(frozen=True)
class StragglerFault:
    """Slow down compute on one PE by a multiplicative factor."""

    pe: int
    compute_scale: float

    def __post_init__(self) -> None:
        if self.pe < 0:
            raise ValueError(f"straggler pe must be >= 0, got {self.pe}")
        if not (self.compute_scale > 0):
            raise ValueError(f"compute_scale must be positive, got {self.compute_scale!r}")


@dataclass(frozen=True)
class DeliveryFault:
    """Transiently drop or delay NVSHMEM put/signal deliveries.

    Directional (``src -> dst``, ``None`` wildcards).  A *dropped*
    delivery is retried by the sender with exponential backoff — unless
    ``silent`` is set, in which case the delivery vanishes without the
    sender noticing (the lost-signal scenario the watchdog exists for).
    ``max_drops`` caps how many deliveries the rule may kill in one run
    (``None`` = unlimited), letting profiles inject a single targeted
    loss deterministically.
    """

    src: int | None = None
    dst: int | None = None
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_us: float = 0.0
    silent: bool = False
    max_drops: int | None = None

    def __post_init__(self) -> None:
        _check_prob(self.drop_prob, "drop_prob")
        _check_prob(self.delay_prob, "delay_prob")
        if self.delay_us < 0:
            raise ValueError(f"delay_us must be non-negative, got {self.delay_us!r}")
        if self.max_drops is not None and self.max_drops < 0:
            raise ValueError(f"max_drops must be >= 0, got {self.max_drops}")

    def matches(self, src: int, dst: int) -> bool:
        return _wild_match(self.src, src) and _wild_match(self.dst, dst)


@dataclass(frozen=True)
class PECrashFault:
    """Fail-stop crash of one PE at a seeded, deterministic time.

    Every process owned by the PE (its host thread, streams, persistent
    thread-block groups) is killed mid-run; in-flight transfers on the
    wire are *not* killed — they were already launched, matching the
    fail-stop model where the NIC finishes what the dead GPU started.

    ``at_us`` pins the crash to an exact simulated time; when ``None``
    the time is drawn uniformly from ``window_us`` using the plan-seeded
    per-site PRNG, so the same plan seed always crashes at the same
    instant regardless of interleaving.
    """

    pe: int
    at_us: float | None = None
    window_us: tuple[float, float] = (50.0, 400.0)

    def __post_init__(self) -> None:
        if self.pe < 0:
            raise ValueError(f"crash pe must be >= 0, got {self.pe}")
        if self.at_us is not None and not (self.at_us > 0):
            raise ValueError(f"at_us must be positive when set, got {self.at_us!r}")
        lo, hi = self.window_us
        if not (0 < lo <= hi):
            raise ValueError(
                f"window_us must satisfy 0 < lo <= hi, got {self.window_us!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded bundle of fault rules plus resilience knobs."""

    name: str = "custom"
    seed: int = 2024
    links: tuple[LinkFault, ...] = ()
    stragglers: tuple[StragglerFault, ...] = ()
    deliveries: tuple[DeliveryFault, ...] = ()
    crashes: tuple[PECrashFault, ...] = ()
    #: how many times a non-silent dropped delivery is retried
    retry_limit: int = 8
    #: first retry backoff (simulated µs); grows by retry_backoff_factor
    retry_backoff_us: float = 2.0
    retry_backoff_factor: float = 2.0
    #: per-attempt signal_wait timeout under faults (None = wait forever)
    wait_timeout_us: float | None = None
    #: watchdog budget per monitored signal wait (None = no watchdog)
    watchdog_budget_us: float | None = None
    #: checkpoint cadence in iterations for crash recovery (None = no
    #: checkpointing: a crash is unrecoverable and must end diagnostic)
    checkpoint_every: int | None = None
    #: simulated cost of restarting a crashed PE from its checkpoint
    restart_cost_us: float = 200.0
    #: heartbeat period each PE publishes while alive; crash detection
    #: latency is quantised to this plus the allowed missed beats
    heartbeat_us: float = 25.0
    #: consecutive missed heartbeats before a PE is declared dead
    heartbeat_misses: int = 2
    #: what the chaos harness should assert: "converge" (run completes,
    #: result bit-identical to the reference), "diagnostic" (run must
    #: end in a WatchdogError naming the stuck signal), or "recover"
    #: (a crash happens, recovery replays from checkpoint, and the final
    #: fields are byte-identical to the fault-free reference)
    expect: str = "converge"

    def __post_init__(self) -> None:
        if self.retry_limit < 0:
            raise ValueError(f"retry_limit must be >= 0, got {self.retry_limit}")
        if not (self.retry_backoff_us > 0):
            raise ValueError(f"retry_backoff_us must be positive, got {self.retry_backoff_us!r}")
        if not (self.retry_backoff_factor >= 1.0):
            raise ValueError(
                f"retry_backoff_factor must be >= 1, got {self.retry_backoff_factor!r}")
        for knob, value in (("wait_timeout_us", self.wait_timeout_us),
                            ("watchdog_budget_us", self.watchdog_budget_us),
                            ("checkpoint_every", self.checkpoint_every)):
            if value is not None and not (value > 0):
                raise ValueError(f"{knob} must be positive when set, got {value!r}")
        if not (self.restart_cost_us >= 0):
            raise ValueError(f"restart_cost_us must be >= 0, got {self.restart_cost_us!r}")
        if not (self.heartbeat_us > 0):
            raise ValueError(f"heartbeat_us must be positive, got {self.heartbeat_us!r}")
        if self.heartbeat_misses < 1:
            raise ValueError(f"heartbeat_misses must be >= 1, got {self.heartbeat_misses}")
        if self.expect not in ("converge", "diagnostic", "recover"):
            raise ValueError(
                f"expect must be 'converge', 'diagnostic' or 'recover', "
                f"got {self.expect!r}")

    @property
    def inert(self) -> bool:
        """True when the plan injects nothing and arms nothing — a run
        under an inert plan is byte-identical to a fault-free run."""
        return not (self.links or self.stragglers or self.deliveries
                    or self.crashes
                    or self.watchdog_budget_us is not None
                    or self.wait_timeout_us is not None)

    def injector(self):
        """Build a fresh :class:`~repro.faults.inject.FaultInjector`."""
        from repro.faults.inject import FaultInjector

        return FaultInjector(self)
