"""Runtime fault injection driven by a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` is bound to one
:class:`~repro.runtime.context.MultiGPUContext` (one simulated run).
Instrumented components hold the injector behind the same ``None``-safe
pattern as the tracer and metrics registry, so a run without faults
executes the exact pre-existing code path — byte-identical timelines,
traces, and metric dumps.

Determinism contract: every random draw comes from a per-site
``random.Random`` seeded with ``sha256(plan.seed + site)``.  Draw order
within a site follows simulated-event order, which the engine already
guarantees is reproducible; no global PRNG state is read or written.
Every injected fault is appended to :attr:`FaultInjector.events`, the
replayable sequence the property tests compare across runs and across
``--jobs`` settings.
"""

from __future__ import annotations

import hashlib
import random
from contextlib import contextmanager
from dataclasses import dataclass

from repro.faults.plan import DeliveryFault, FaultPlan, LinkFault
from repro.hw.interconnect import Link
from repro.sim.engine import Flag, Watchdog

__all__ = [
    "DeliveryError",
    "FaultEvent",
    "FaultInjector",
    "RETRY_EDGES",
    "SignalWaitTimeout",
    "use_crash_context",
]

#: ambient (base_us, consumed-PE set) installed by the recovery runner:
#: a restarted segment starts its local clock at 0 but represents global
#: time ``base_us`` onward, and PEs that already crashed must not be
#: re-armed.  Plain module state (not thread-local): simulations are
#: single-threaded per process, and worker processes each get their own
#: module copy.
_CRASH_CONTEXT: tuple[float, frozenset[int]] = (0.0, frozenset())


@contextmanager
def use_crash_context(base_us: float, consumed: frozenset[int] = frozenset()):
    """Shift crash arming for a recovery segment: global crash times are
    translated by ``base_us`` into segment-local time, and crashes of
    PEs in ``consumed`` are not re-armed (they already fired)."""
    global _CRASH_CONTEXT
    prev = _CRASH_CONTEXT
    _CRASH_CONTEXT = (float(base_us), frozenset(consumed))
    try:
        yield
    finally:
        _CRASH_CONTEXT = prev

#: fixed bucket edges for retry-count histograms (attempts per op)
RETRY_EDGES = (1.0, 2.0, 4.0, 8.0, 16.0)


class DeliveryError(RuntimeError):
    """A put/signal delivery was dropped more times than the plan's
    retry budget allows — the simulated transport gave up."""


class SignalWaitTimeout(RuntimeError):
    """A ``signal_wait_until`` exhausted its timeout and retry budget
    without the signal arriving."""


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, in injection order.

    ``t`` is simulated time; ``site`` identifies where the fault landed
    (a link or delivery route); ``value`` carries the magnitude (jitter
    µs, delay µs, ...) or 0.0 for pure drops.
    """

    t: float
    kind: str
    site: str
    value: float = 0.0

    def key(self) -> str:
        """Canonical line used for sequence digests (repr-exact floats)."""
        return f"{self.t!r}|{self.kind}|{self.site}|{self.value!r}"


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan` for one simulation."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: injected faults, in order — the replay-determinism witness
        self.events: list[FaultEvent] = []
        #: per signal-flag name: (t, src_pe, outcome, attempt) of the
        #: most recent delivery attempt targeting it (watchdog context)
        self.last_attempt: dict[str, tuple[float, int, str, int]] = {}
        self.total_retries = 0
        self.total_degraded_puts = 0
        self._rngs: dict[str, random.Random] = {}
        self._sim = None
        self._metrics = None
        self._tracer = None
        self._link_rules: dict[tuple[int, int], tuple[LinkFault, ...]] = {}
        self._links: dict[tuple[int, int], Link] = {}
        self._down: dict[tuple[int, int], bool] = {}
        self._delivery_rules: dict[tuple[int, int], tuple[tuple[int, DeliveryFault], ...]] = {}
        self._drops_by_rule: dict[int, int] = {}
        #: hot-path accumulator flushed into the registry after run()
        self._jitter_acc = [0.0, 0]  # [total µs, draw count]
        #: pe -> segment-local crash time, filled as crashes fire
        self.crashed: dict[int, float] = {}
        #: global-time offset of this run's local clock (recovery segments)
        self.crash_base_us = 0.0
        self._crash_handlers: list = []
        self._crash_times: dict[int, float] = {}

    # -- wiring ---------------------------------------------------------------

    def bind(self, ctx) -> "FaultInjector":
        """Attach to a context: hook the topology, record the profile in
        the metrics dump, and install the watchdog if the plan asks for
        one.  Called by ``MultiGPUContext.__init__``."""
        self._sim = ctx.sim
        self._tracer = ctx.tracer
        self._metrics = ctx.metrics
        ctx.topology.faults = self
        if self._metrics is not None:
            self._metrics.gauge("faults.profile", profile=self.plan.name).set(1)
            self._metrics.gauge("faults.seed").set(self.plan.seed)
            for s in self.plan.stragglers:
                self._metrics.gauge("faults.straggler_scale", pe=str(s.pe)).set(s.compute_scale)
            ctx.add_metric_flusher(self.flush_metrics)
        if self.plan.watchdog_budget_us is not None:
            watchdog = Watchdog(self.plan.watchdog_budget_us, name=self.plan.name)
            watchdog.add_context(self.watchdog_context)
            if self.plan.crashes:
                watchdog.add_context(self.crash_context)
            ctx.sim.attach_watchdog(watchdog)
        if self.plan.crashes:
            base_us, consumed = _CRASH_CONTEXT
            self.crash_base_us = base_us
            for crash in self.plan.crashes:
                if crash.pe in consumed:
                    continue
                local_t = self.crash_time(crash.pe) - base_us
                if local_t <= 0:
                    continue
                # Weak event: a crash scheduled past the run's natural
                # end must not fire or stretch the measured timeline.
                ctx.sim.call_at(local_t, self._make_crash_cb(crash.pe), weak=True)
        return self

    def _make_crash_cb(self, pe: int):
        return lambda: self._fire_crash(pe)

    def flush_metrics(self) -> None:
        total, draws = self._jitter_acc
        if draws and self._metrics is not None:
            self._metrics.counter("faults.jitter_us").inc(total)
            self._metrics.counter("faults.jitter_draws").inc(draws)
            self._jitter_acc[0] = 0.0
            self._jitter_acc[1] = 0

    # -- internals ------------------------------------------------------------

    def _now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            digest = hashlib.sha256(f"{self.plan.seed}:{site}".encode()).digest()
            rng = self._rngs[site] = random.Random(int.from_bytes(digest[:8], "big"))
        return rng

    def _record(self, kind: str, site: str, value: float = 0.0, *,
                instant: bool = False, args: dict | None = None) -> FaultEvent:
        event = FaultEvent(self._now(), kind, site, value)
        self.events.append(event)
        if self._metrics is not None:
            self._metrics.counter("faults.injected", kind=kind).inc()
        if instant and self._tracer is not None:
            self._tracer.add_instant(f"fault:{kind}", event.t, category="fault", args=args)
        return event

    # -- link faults ----------------------------------------------------------

    def _rules_for(self, src: int, dst: int) -> tuple[LinkFault, ...]:
        key = (src, dst)
        rules = self._link_rules.get(key)
        if rules is None:
            rules = self._link_rules[key] = tuple(
                r for r in self.plan.links if r.matches(src, dst))
        return rules

    def link_down(self, src: int, dst: int) -> bool:
        """True when the direct ``src -> dst`` link is permanently dead
        and transfers must stage through the host."""
        key = (src, dst)
        down = self._down.get(key)
        if down is None:
            down = self._down[key] = any(r.down for r in self._rules_for(src, dst))
        return down

    def effective_link(self, src: int, dst: int, base: Link) -> Link:
        """Apply bandwidth/latency degradation rules to ``base``."""
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            bandwidth = base.bandwidth_gbps
            latency = base.latency_us
            for rule in self._rules_for(src, dst):
                bandwidth *= rule.bandwidth_scale
                latency += rule.extra_latency_us
            if bandwidth != base.bandwidth_gbps or latency != base.latency_us:
                link = Link(bandwidth, latency)
                self._record("link_degraded", f"link:{src}->{dst}",
                             base.bandwidth_gbps - bandwidth)
            else:
                link = base
            self._links[key] = link
        return link

    def transfer_jitter_us(self, src: int, dst: int) -> float:
        """Per-transfer random extra latency on the ``src -> dst`` route."""
        total = 0.0
        for rule in self._rules_for(src, dst):
            if rule.jitter_us > 0.0:
                total += self._rng(f"jitter:{src}->{dst}").uniform(0.0, rule.jitter_us)
        if total:
            self._record("jitter", f"link:{src}->{dst}", total)
            self._jitter_acc[0] += total
            self._jitter_acc[1] += 1
        return total

    def staged_transfer_us(self, topology, src: int, dst: int, nbytes: float, *,
                           sharers: int = 1) -> float:
        """Degraded-mode routing: ``src -> host -> dst`` when the direct
        link is down.  The route (and its price) is the topology's call:
        on a flat node it is the two (possibly degraded) host links; on
        a hierarchical one an inter-node reroute also crosses — and
        charges — the source domain's rail, not a fictional machine-wide
        host link."""
        cost = topology.staged_route_us(src, dst, nbytes, sharers=sharers)
        self._record("staged_copy", f"link:{src}->{dst}", nbytes, instant=True,
                     args={"src": src, "dst": dst, "nbytes": nbytes})
        if self._metrics is not None:
            self._metrics.counter("hw.link.staged_transfers",
                                  src=str(src), dst=str(dst)).inc()
        return cost

    # -- stragglers -----------------------------------------------------------

    def compute_scale(self, device: int) -> float:
        """Multiplier on modeled compute time for ``device``."""
        scale = 1.0
        for rule in self.plan.stragglers:
            if rule.pe == device:
                scale *= rule.compute_scale
        return scale

    # -- delivery faults ------------------------------------------------------

    def _delivery_rules_for(self, src: int, dst: int) -> tuple[tuple[int, DeliveryFault], ...]:
        key = (src, dst)
        rules = self._delivery_rules.get(key)
        if rules is None:
            rules = self._delivery_rules[key] = tuple(
                (i, r) for i, r in enumerate(self.plan.deliveries) if r.matches(src, dst))
        return rules

    def delivery_faults_apply(self, src: int, dst: int) -> bool:
        """True when some delivery rule can hit the ``src -> dst`` route
        (senders only pay the retry-loop plumbing on faulty routes)."""
        return bool(self._delivery_rules_for(src, dst))

    def delivery_outcome(self, src: int, dst: int, op: str, flag_name: str | None,
                         attempt: int) -> tuple[str, float]:
        """Decide the fate of one delivery attempt.

        Returns ``(outcome, extra_us)`` where outcome is ``"ok"``,
        ``"drop"`` (sender notices, retries), ``"lost"`` (silent drop —
        the sender believes it succeeded), or ``"delay"`` (delivered
        ``extra_us`` late).
        """
        site = f"deliv:{src}->{dst}"
        rng = self._rng(site)
        outcome, extra = "ok", 0.0
        for index, rule in self._delivery_rules_for(src, dst):
            if rule.drop_prob and rng.random() < rule.drop_prob:
                dropped = self._drops_by_rule.get(index, 0)
                if rule.max_drops is None or dropped < rule.max_drops:
                    self._drops_by_rule[index] = dropped + 1
                    outcome = "lost" if rule.silent else "drop"
                    break
            if rule.delay_prob and rng.random() < rule.delay_prob:
                outcome, extra = "delay", rule.delay_us
                break
        if flag_name is not None:
            self.last_attempt[flag_name] = (self._now(), src, outcome, attempt)
        if outcome != "ok":
            self._record(outcome, site, extra, instant=True,
                         args={"op": op, "src": src, "dst": dst, "attempt": attempt})
            if self._metrics is not None:
                self._metrics.counter(f"nvshmem.delivery.{outcome}",
                                      src=str(src), dst=str(dst)).inc()
        return outcome, extra

    def retry_backoff_us(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), growing
        exponentially in simulated time."""
        return self.plan.retry_backoff_us * self.plan.retry_backoff_factor ** (attempt - 1)

    def note_retries(self, src: int, dst: int, attempts: int) -> None:
        """Account a delivery that needed ``attempts`` retries."""
        self.total_retries += attempts
        if self._metrics is not None:
            self._metrics.counter("nvshmem.retry.count", src=str(src), dst=str(dst)).inc(attempts)
            self._metrics.histogram("nvshmem.retry.per_op", RETRY_EDGES,
                                    src=str(src), dst=str(dst)).observe(attempts)

    def note_degraded_put(self, src: int, dst: int, nbytes: float) -> None:
        """Account an NVSHMEM put that took the host-staged route."""
        self.total_degraded_puts += 1
        self._record("staged_put", f"deliv:{src}->{dst}", nbytes, instant=True,
                     args={"src": src, "dst": dst, "nbytes": nbytes})
        if self._metrics is not None:
            self._metrics.counter("nvshmem.degraded.puts", src=str(src), dst=str(dst)).inc()
            self._metrics.counter("nvshmem.degraded.bytes",
                                  src=str(src), dst=str(dst)).inc(nbytes)

    def note_wait_timeout(self, flag_name: str, attempt: int) -> None:
        """Account a signal_wait timeout expiry (attempt is 1-based)."""
        self._record("wait_timeout", f"wait:{flag_name}", attempt, instant=True,
                     args={"flag": flag_name, "attempt": attempt})
        if self._metrics is not None:
            self._metrics.counter("nvshmem.wait.timeouts", flag=flag_name).inc()

    # -- fail-stop crashes ----------------------------------------------------

    def crash_time(self, pe: int) -> float:
        """Global simulated time at which ``pe`` crashes: the pinned
        ``at_us`` if set, else a seed-deterministic draw from the
        crash window (cached — one draw per PE per injector)."""
        t = self._crash_times.get(pe)
        if t is None:
            for crash in self.plan.crashes:
                if crash.pe == pe:
                    if crash.at_us is not None:
                        t = crash.at_us
                    else:
                        t = self._rng(f"crash:pe{pe}").uniform(*crash.window_us)
                    break
            else:
                raise KeyError(f"no PECrashFault for pe {pe}")
            self._crash_times[pe] = t
        return t

    def on_crash(self, handler) -> None:
        """Register ``handler(pe, local_t)`` called when a PE dies —
        the recovery runner uses this to start detection."""
        self._crash_handlers.append(handler)

    def _fire_crash(self, pe: int) -> None:
        """Kill every process the PE owns, fail-stop.

        Ownership is by spawn-name convention: ``gpu{pe}.*`` (streams,
        persistent kernel groups, device-side proxies) and ``*.host{pe}``
        (host control threads).  In-flight transfers (``nvshmem.*`` and
        ``mpi_xfer_*`` deliveries) are deliberately spared — they are
        already on the wire.
        """
        if pe in self.crashed:
            return
        t = self._now()
        self.crashed[pe] = t
        gpu_prefix = f"gpu{pe}."
        host_suffix = f".host{pe}"
        killed = self._sim.kill_matching(
            lambda p: p.name.startswith(gpu_prefix) or p.name.endswith(host_suffix))
        self._record("pe_crash", f"pe:{pe}", float(len(killed)), instant=True,
                     args={"pe": pe, "killed": len(killed),
                           "global_t": t + self.crash_base_us})
        if self._metrics is not None:
            self._metrics.counter("faults.pe_crash", pe=str(pe)).inc()
        if self._tracer is not None:
            # Crash hygiene: the dead PE's dangling spans are closed at
            # the crash instant and tagged, so the trace shows truncated
            # work instead of leaking open spans.  Wire lanes stay open
            # — their (surviving) delivery processes close them.
            host_lane = f"host{pe}"
            self._tracer.close_all(
                t,
                lanes=lambda lane: lane.startswith(gpu_prefix) or lane == host_lane,
                tag=f"pe_crash:{pe}")
        for handler in list(self._crash_handlers):
            handler(pe, t)

    def crash_context(self, flag: Flag) -> str | None:
        """Watchdog context provider: name PEs that died fail-stop, so
        a post-crash hang diagnoses as a crash, not a mystery."""
        if not self.crashed:
            return None
        dead = ", ".join(f"pe{pe} crashed fail-stop at t={t:.3f}us"
                         for pe, t in sorted(self.crashed.items()))
        return f"dead PEs: {dead}"

    # -- diagnostics ----------------------------------------------------------

    def watchdog_context(self, flag: Flag) -> str | None:
        """Watchdog context provider: last delivery attempt that
        targeted the stuck signal."""
        record = self.last_attempt.get(flag.name)
        if record is None:
            return f"no delivery attempt recorded for {flag.name}"
        t, src, outcome, attempt = record
        return (f"last delivery attempt for {flag.name}: from pe{src} at "
                f"t={t:.3f}us — {outcome} (attempt {attempt + 1})")

    def summary(self) -> dict:
        """Deterministic JSON-ready digest of everything injected."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        digest = hashlib.sha256(
            "\n".join(event.key() for event in self.events).encode()).hexdigest()
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "expect": self.plan.expect,
            "injected_events": len(self.events),
            "event_counts": dict(sorted(counts.items())),
            "events_sha256": digest,
            "total_retries": self.total_retries,
            "degraded_puts": self.total_degraded_puts,
            "crashed_pes": {str(pe): t for pe, t in sorted(self.crashed.items())},
        }
