"""Single-array NumPy reference Jacobi solvers.

These define the ground truth every distributed variant is validated
against.  The update formulas match the distributed kernels exactly
(same expression, same operation order), so comparisons can be
bit-exact.

2D 5-point::

    u'[i,j] = 0.25 * (u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1])

3D 7-point::

    u'[i,j,k] = (u[i±1,j,k] + u[i,j±1,k] + u[i,j,k±1]) / 6

with Dirichlet boundaries (the outermost ring never changes) — the
2D-Laplace setup of NVIDIA's multi-GPU Jacobi sample (§2.1).
"""

from __future__ import annotations

import numpy as np

__all__ = ["jacobi_reference", "jacobi_step", "update_layers"]


def update_layers(read: np.ndarray, write: np.ndarray, lo: int, hi: int) -> None:
    """Update axis-0 layers ``lo..hi-1`` of ``write`` from ``read``.

    Indices are in the *local* array's coordinates; callers are
    responsible for ``lo >= 1`` and ``hi <= n-1`` so the stencil never
    reads out of bounds.  The Dirichlet ring on the remaining axes is
    preserved (only columns ``1..-2`` update).
    """
    if not 1 <= lo <= hi <= read.shape[0] - 1:
        raise ValueError(f"layer range [{lo}, {hi}) outside valid interior")
    if read.ndim == 2:
        write[lo:hi, 1:-1] = 0.25 * (
            read[lo - 1 : hi - 1, 1:-1]
            + read[lo + 1 : hi + 1, 1:-1]
            + read[lo:hi, :-2]
            + read[lo:hi, 2:]
        )
    elif read.ndim == 3:
        write[lo:hi, 1:-1, 1:-1] = (
            read[lo - 1 : hi - 1, 1:-1, 1:-1]
            + read[lo + 1 : hi + 1, 1:-1, 1:-1]
            + read[lo:hi, :-2, 1:-1]
            + read[lo:hi, 2:, 1:-1]
            + read[lo:hi, 1:-1, :-2]
            + read[lo:hi, 1:-1, 2:]
        ) / 6.0
    else:
        raise ValueError(f"unsupported dimensionality: {read.ndim}")


def jacobi_step(u: np.ndarray) -> np.ndarray:
    """One Jacobi sweep over the full interior; returns a new array."""
    out = np.array(u)
    update_layers(u, out, 1, u.shape[0] - 1)
    return out


def jacobi_reference(u0: np.ndarray, iterations: int) -> np.ndarray:
    """Run ``iterations`` Jacobi sweeps from initial condition ``u0``."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    u = np.array(u0)
    for _ in range(iterations):
        u = jacobi_step(u)
    return u
