"""Convenience entry point: run a named variant for a config."""

from __future__ import annotations

import repro.stencil.variants  # noqa: F401 - populate the registry
from repro.stencil.base import VARIANTS, StencilConfig, StencilResult

__all__ = ["run_variant"]


def run_variant(name: str, config: StencilConfig) -> StencilResult:
    """Instantiate and run the variant registered as ``name``."""
    try:
        cls = VARIANTS[name]
    except KeyError:
        raise ValueError(f"unknown variant {name!r}; known: {sorted(VARIANTS)}") from None
    return cls(config).run()
