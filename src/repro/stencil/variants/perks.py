"""CPU-Free + PERKS: cached inner kernel behind the same comm scheme.

PERKS (Zhang et al. 2022) keeps part of the domain resident in
registers and shared memory across iterations of a persistent kernel,
cutting the per-iteration global-memory traffic; its hand-tuned kernel
also tiles over-saturated domains efficiently (no §4.1.4 penalty).
Per paper §4.1.3 we wrap the PERKS inner kernel with the CPU-Free
boundary/communication groups, treating it as a black box restricted
to the inner domain (the boundary layers are immutable halos to it).
"""

from __future__ import annotations

from repro.sim.stacked import Stacked, stacked_val
from repro.stencil.base import StencilConfig, register_variant
from repro.stencil.variants.cpufree import CPUFree

__all__ = ["CPUFreePERKS", "perks_residency"]


def perks_residency(config: StencilConfig, interior_elements: int) -> float:
    """Effective cache residency of the PERKS inner kernel.

    PERKS caches the *resident wave's* working set (registers + shared
    memory) across iterations and tiles the rest temporally, so the
    effective residency is full whenever one wave's tile fits on-chip —
    which holds for any domain on an A100 (per-SM tile of a 1024-thread
    block is ~8 KB of fp64 against ~290 KB of register+shared storage).
    The function still degrades gracefully for hypothetical GPUs whose
    cache cannot hold even one wave.
    """
    if isinstance(interior_elements, Stacked):
        # Batched sweep: `min(wave, interior)` branches per member
        # (small domains are wave-bound, large ones interior-bound), so
        # evaluate the exact scalar expression member-wise.
        per = [perks_residency(config, e) for e in interior_elements.v]
        if all(r == per[0] for r in per[1:]):
            return per[0]
        return stacked_val(per)
    if interior_elements <= 0:
        return 0.0
    gpu = config.node.gpu
    register_cache_bytes = gpu.registers_per_sm * 4 // 2  # half the 32-bit regfile
    per_sm_bytes = gpu.shared_mem_per_sm_bytes + register_cache_bytes
    cache_elements = gpu.sm_count * per_sm_bytes // 8
    wave_elements = gpu.saturation_elements(config.threads_per_block)
    wave = min(wave_elements, interior_elements)
    return min(1.0, cache_elements / wave)


@register_variant
class CPUFreePERKS(CPUFree):
    name = "cpufree_perks"
    tiling_limited = False  # PERKS' kernel tiles large domains well

    def setup(self) -> None:
        super().setup()
        # Residency is per-rank; ranks are near-equal so rank 0 is
        # representative (PERKS caches the same fraction everywhere).
        self.inner_perks_residency = perks_residency(
            self.config, self.decomp.interior_elements(0)
        )
