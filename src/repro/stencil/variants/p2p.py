"""Baseline P2P: GPU-initiated data, CPU-controlled synchronization.

The kernel writes its boundary layers directly into the neighbors'
halos through UVA peer load/stores — so the *data path* is
GPU-initiated — but the kernel is still discrete and iteration pacing
is still done with host stream syncs and a host barrier (§6.1.1
"Baseline P2P: ... synchronization is handled by the host").
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.runtime.kernel import KernelSpec
from repro.stencil.base import StencilVariant, register_variant

__all__ = ["BaselineP2P"]


@register_variant
class BaselineP2P(StencilVariant):
    name = "baseline_p2p"

    def setup(self) -> None:
        self.setup_regular_buffers()
        self.ctx.memory.enable_all_peer_access()
        # P2P syncs ranks with host-mapped events rather than a full
        # OpenMP/MPI rendezvous (the data path is already device-side),
        # so its per-step host sync is cheaper than copy/overlap's.
        from repro.runtime.mpi import HostBarrier
        import math

        parties = self.config.num_gpus
        cost = (
            0.0 if parties <= 1
            else 2 * self.config.cost.event_sync_us * math.ceil(math.log2(parties))
        )
        self._p2p_barrier = HostBarrier(self.ctx.sim, parties, cost, name="p2p.events")

    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")
        rows = self.local_rows(rank)
        blocks = self.discrete_blocks(self.decomp.interior_elements(rank))
        neighbors = self.neighbors(rank)

        for it in range(1, self.config.iterations + 1):
            def kernel(dev, it=it):
                # compute the whole local domain ...
                yield from self.compute_layers(dev, rank, it, 1, rows - 1, name="jacobi")
                # ... then store boundaries straight into peer memory
                for side, nbr in neighbors.items():
                    if self.ctx.link_down(rank, nbr):
                        # degraded mode: the direct NVLink is dead, so
                        # the halo stages through host memory instead of
                        # hanging on the P2P path (transfer_us routes
                        # src -> host -> dst and accounts the staging)
                        cost = self.ctx.topology.transfer_us(rank, nbr, self.halo_nbytes)
                        yield from dev.busy(cost, f"halo_{side}_staged", "comm")
                        if self.config.with_data:
                            assert self.devbufs is not None
                            parity = self.write_parity(it)
                            self.devbufs[nbr][parity].data[
                                self.halo_layer(nbr, self.opposite(side))
                            ] = self.boundary_values(rank, it, side)
                    elif self.config.with_data:
                        assert self.devbufs is not None
                        parity = self.write_parity(it)
                        yield from dev.peer_store(
                            self.devbufs[nbr][parity],
                            self.halo_layer(nbr, self.opposite(side)),
                            self.boundary_values(rank, it, side),
                            name=f"halo_{side}",
                        )
                    else:
                        yield from dev.busy(
                            self.ctx.topology.transfer_us(rank, nbr, self.halo_nbytes),
                            f"halo_{side}",
                            "comm",
                        )

            yield from host.launch(stream, KernelSpec("jacobi_p2p", blocks=blocks), kernel)
            # host-side pacing: stream drain + event-based rank sync
            yield from host.stream_sync(stream)
            start = self.ctx.sim.now
            yield from self._p2p_barrier.wait()
            self.ctx.trace(f"host{rank}", "event_sync", "sync", start, self.ctx.sim.now)
