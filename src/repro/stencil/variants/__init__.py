"""Stencil communication variants (paper §6.1.1 evaluation matrix).

Importing this package registers every variant in
:data:`repro.stencil.base.VARIANTS`.
"""

from repro.stencil.variants.copy import BaselineCopy
from repro.stencil.variants.overlap import BaselineOverlap
from repro.stencil.variants.p2p import BaselineP2P
from repro.stencil.variants.nvshmem_discrete import BaselineNVSHMEM
from repro.stencil.variants.cpufree import CPUFree
from repro.stencil.variants.perks import CPUFreePERKS
from repro.stencil.variants.coresident import CPUFreeCoResident
from repro.stencil.variants.auto_overlap import AutoOverlap

__all__ = [
    "AutoOverlap",
    "BaselineCopy",
    "BaselineNVSHMEM",
    "BaselineOverlap",
    "BaselineP2P",
    "CPUFree",
    "CPUFreeCoResident",
    "CPUFreePERKS",
]
