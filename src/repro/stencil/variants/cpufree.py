"""CPU-Free stencil — the paper's model (Listing 4.1).

One cooperative persistent kernel per GPU hosts the whole time loop.
Thread blocks are specialized (§4.1.2): one group per boundary side
waits on its neighbor's signal, computes the boundary layer, writes it
into the neighbor's halo with ``putmem_signal_nbi`` (block-cooperative)
and signals availability; the remaining blocks compute the inner
domain.  ``grid.sync()`` closes every iteration.  The host's only role
is the initial launch.

Signal protocol (§4.1.1): flags start at 1 ("iteration-0 halos present"
— the initial scatter fills them).  At iteration ``it`` a boundary
group waits for its flag to reach ``it``, and after writing the halo
sets the neighbor's flag to ``it + 1``.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.core import GridBarrier, TBGroup, launch_persistent
from repro.nvshmem import WaitCond
from repro.runtime.kernel import DeviceKernelContext
from repro.stencil.base import StencilVariant, register_variant
from repro.stencil.variants.nvshmem_discrete import SIGNAL_INDEX

__all__ = ["CPUFree"]


@register_variant
class CPUFree(StencilVariant):
    name = "cpufree"
    uses_nvshmem = True
    #: perks_residency handed to the inner kernel (overridden by the
    #: PERKS variant)
    inner_perks_residency = 0.0
    #: whether the inner kernel suffers the §4.1.4 software-tiling
    #: penalty when oversubscribed (PERKS tiles better: it opts out)
    tiling_limited = True

    def setup(self) -> None:
        assert self.nvshmem is not None
        self.setup_symmetric_buffers()
        # four flags per PE: {top, bottom} halo-arrived semaphores,
        # initialized to 1 = initial halos present
        self.signals = self.nvshmem.malloc_signals("halo_flags", 2)
        for pe in range(self.config.num_gpus):
            for index in SIGNAL_INDEX.values():
                self.signals.flag(pe, index).set(1)

    # -- TB group bodies ------------------------------------------------------

    def _boundary_body(self, rank: int, side: str, plan):
        neighbors = self.neighbors(rank)
        nbr = neighbors.get(side)

        def body(dev: DeviceKernelContext, grid: GridBarrier) -> Generator[Any, Any, None]:
            nv = self.nvshmem.device(rank, lane=dev.lane)
            layer = self.boundary_layer(rank, side)
            for it in range(1, self.config.iterations + 1):
                if nbr is not None:
                    # ① wait for the neighbor's iteration-(it-1) halo
                    yield from nv.signal_wait_until(
                        self.signals, SIGNAL_INDEX[side], WaitCond.GE, it
                    )
                # ② compute this side's boundary layer
                yield from self.compute_layers(
                    dev, rank, it, layer, layer + 1,
                    fraction_of_device=plan.boundary_fraction_per_side,
                    name=f"boundary_{side}",
                )
                if nbr is not None:
                    # ③+④ write the neighbor's halo and signal it
                    dst = self.sym[self.write_parity(it)] if self.config.with_data else None
                    yield from nv.putmem_signal_nbi(
                        dst,
                        self.halo_layer(nbr, self.opposite(side)),
                        self.boundary_values(rank, it, side),
                        self.signals,
                        SIGNAL_INDEX[self.opposite(side)],
                        it + 1,
                        dest_pe=nbr,
                        nbytes=self.halo_nbytes,
                        name=f"halo_{side}",
                    )
                # ⑤ synchronize all TBs before the next time step
                yield from grid.wait()

        return body

    def _inner_body(self, rank: int, plan):
        rows = self.local_rows(rank)
        tiling = self.inner_tiling_factor(rank, plan) if self.tiling_limited else 1.0

        def body(dev: DeviceKernelContext, grid: GridBarrier) -> Generator[Any, Any, None]:
            for it in range(1, self.config.iterations + 1):
                yield from self.compute_layers(
                    dev, rank, it, 2, rows - 2,
                    fraction_of_device=plan.inner_fraction,
                    tiling_factor=tiling,
                    perks_residency=self.inner_perks_residency,
                    name="inner",
                )
                yield from grid.wait()

        return body

    # -- host program: a single launch -----------------------------------------

    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")
        plan = self.specialization(rank)
        groups = [
            TBGroup("comm_top", plan.boundary_tb_per_side,
                    self._boundary_body(rank, "top", plan)),
            TBGroup("comm_bottom", plan.boundary_tb_per_side,
                    self._boundary_body(rank, "bottom", plan)),
            TBGroup("inner", plan.inner_tb, self._inner_body(rank, plan)),
        ]
        kernel = yield from launch_persistent(
            host, stream, "cpufree_jacobi", groups,
            threads_per_block=self.config.threads_per_block,
        )
        yield from host.event_sync(kernel.event)
