"""Auto-overlapped stencil — the compiler-derived schedule (§5 + Syncopate).

``cpufree.py`` hand-codes the boundary/interior split; this variant is
what the :mod:`repro.sdfg.transforms.overlap` pass produces when pointed
at the same program: the inner domain is tiled into ``K`` chunks so
each chunk's working set stays under the co-resident kernel's
software-tiling knee (§4.1.4), at the price of ``K-1`` extra
device-loop/block-sync hops per iteration.

The schedule — chunk count, optional TB-split override, optional fused
boundary group — is an :class:`OverlapSchedule`.  When none is given,
:func:`choose_schedule` picks one from the calibrated
:class:`~repro.hw.CostModel` alone (no measurement); :mod:`repro.tune`
refines that guess by sweeping real (simulated) runs.

With ``chunks == 1`` and no overrides the variant *is* ``cpufree``: the
inner body delegates to the parent, so per-iteration times tie exactly.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.core import GridBarrier, SpecializationPlan, TBGroup, launch_persistent, plan_blocks
from repro.nvshmem import WaitCond
from repro.stencil.base import StencilConfig, register_variant
from repro.stencil.grid import SlabDecomposition
from repro.stencil.variants.cpufree import CPUFree
from repro.stencil.variants.nvshmem_discrete import SIGNAL_INDEX

__all__ = ["AutoOverlap", "OverlapSchedule", "choose_schedule", "CHUNK_CANDIDATES"]

#: chunk counts the cost model (and the autotuner's default grid) considers
CHUNK_CANDIDATES = (1, 2, 3, 4, 6, 8)


@dataclass(frozen=True)
class OverlapSchedule:
    """One point in the auto-overlap schedule space."""

    #: number of inner-domain chunks per iteration (1 == cpufree's schedule)
    chunks: int
    #: override for the §4.1.2 proportional TB split (None == keep it)
    boundary_tb_per_side: int | None = None
    #: run both boundary sides in one fused TB group (halves the group
    #: count; the sides then execute sequentially)
    fuse_boundary: bool = False

    def __post_init__(self) -> None:
        if self.chunks < 1:
            raise ValueError("chunks must be >= 1")
        if self.boundary_tb_per_side is not None and self.boundary_tb_per_side < 1:
            raise ValueError("boundary_tb_per_side must be >= 1 when set")

    def describe(self) -> dict:
        """Plain-dict form for the byte-stable schedule JSON."""
        return {
            "chunks": self.chunks,
            "boundary_tb_per_side": self.boundary_tb_per_side,
            "fuse_boundary": self.fuse_boundary,
        }


def _chunk_rows(inner_rows: int, chunks: int) -> list[int]:
    """Row count of each chunk — the same balanced integer split the
    overlap transform emits (``(j*n)//K`` boundaries)."""
    return [
        ((j + 1) * inner_rows) // chunks - (j * inner_rows) // chunks
        for j in range(chunks)
    ]


def model_inner_time_us(config: StencilConfig, chunks: int) -> float:
    """Cost-model estimate of one iteration's inner-domain time at a
    given chunk count, for the busiest rank (rank 0 holds the ceil of
    the slab split).

    Mirrors :meth:`StencilVariant.specialization` /
    :meth:`compute_layers`: the proportional TB plan gives the inner
    fraction and resident-thread count, each chunk pays its own
    §4.1.4 tiling factor, and every chunk switch pays one device-loop
    iteration plus a block-level sync.
    """
    decomp = SlabDecomposition(config.global_shape, config.num_gpus)
    cost = config.cost
    tb_total = config.node.gpu.max_coresident_blocks(config.threads_per_block)
    plan = plan_blocks(
        tb_total, decomp.inner_elements(0), decomp.row_elements, sides=2,
    )
    resident = plan.inner_tb * config.threads_per_block
    hbm = config.node.gpu.hbm_bandwidth_gbps
    inner_rows = decomp.chunk_rows(0) - 2
    total = 0.0
    for rows in _chunk_rows(inner_rows, chunks):
        elements = rows * decomp.row_elements
        total += cost.compute_time_us(
            elements,
            hbm,
            fraction_of_device=plan.inner_fraction,
            tiling_factor=cost.tiling_factor(elements, resident),
        )
    total += (chunks - 1) * (cost.device_loop_overhead_us + cost.block_sync_us)
    return total


def choose_schedule(
    config: StencilConfig, *, candidates: tuple[int, ...] = CHUNK_CANDIDATES
) -> OverlapSchedule:
    """Pick the chunk count the calibrated cost model predicts fastest.

    Deterministic: candidates are scanned in ascending order and a
    larger chunk count must win by a strict margin, so ties resolve to
    the smallest ``K`` (and a flat landscape resolves to ``K=1``,
    i.e. exactly cpufree's schedule).
    """
    best_k, best_t = None, None
    for k in sorted(candidates):
        t = model_inner_time_us(config, k)
        if best_t is None or t < best_t - 1e-9:
            best_k, best_t = k, t
    return OverlapSchedule(chunks=best_k)


@register_variant
class AutoOverlap(CPUFree):
    """CPU-Free schedule with compiler-chosen chunking (see module doc)."""

    name = "auto_overlap"

    def __init__(self, config: StencilConfig, schedule: OverlapSchedule | None = None):
        super().__init__(config)
        self.schedule = schedule if schedule is not None else choose_schedule(config)

    # -- TB split -------------------------------------------------------------

    def specialization(self, rank: int) -> SpecializationPlan:
        per_side = self.schedule.boundary_tb_per_side
        if per_side is None:
            return super().specialization(rank)
        return SpecializationPlan(
            tb_total=self.coresident_blocks(),
            boundary_tb_per_side=per_side,
            sides=2,
        )

    # -- chunked inner domain -------------------------------------------------

    def _inner_body(self, rank: int, plan):
        chunks = self.schedule.chunks
        if chunks <= 1:
            # schedule degenerates to cpufree's: reuse it verbatim so the
            # two variants' per-iteration times tie bit-for-bit
            return super()._inner_body(rank, plan)

        rows = self.local_rows(rank)
        cost = self.config.cost
        resident = plan.inner_tb * self.config.threads_per_block
        row_elements = self.decomp.row_elements
        switch_us = cost.device_loop_overhead_us + cost.block_sync_us
        bounds = [2]
        for nrows in _chunk_rows(rows - 4, chunks):
            bounds.append(bounds[-1] + nrows)

        def body(dev, grid: GridBarrier) -> Generator[Any, Any, None]:
            for it in range(1, self.config.iterations + 1):
                for j in range(chunks):
                    lo, hi = bounds[j], bounds[j + 1]
                    tiling = (
                        cost.tiling_factor((hi - lo) * row_elements, resident)
                        if self.tiling_limited else 1.0
                    )
                    yield from self.compute_layers(
                        dev, rank, it, lo, hi,
                        fraction_of_device=plan.inner_fraction,
                        tiling_factor=tiling,
                        perks_residency=self.inner_perks_residency,
                        name=f"inner_chunk{j}",
                    )
                    if j + 1 < chunks:
                        # chunk switch: one persistent-loop hop + block sync
                        yield from dev.busy(switch_us, "chunk_switch", "sync")
                yield from grid.wait()

        return body

    # -- optional fused boundary group ----------------------------------------

    def _fused_boundary_body(self, rank: int, plan):
        """One TB group playing both side roles, sequentially per
        iteration.  Deadlock-free: the wait at iteration ``it`` is
        satisfied by the neighbor's iteration-``it-1`` put (flags start
        at 1), so no intra-iteration circular dependency exists.
        """
        neighbors = self.neighbors(rank)

        def body(dev, grid: GridBarrier) -> Generator[Any, Any, None]:
            nv = self.nvshmem.device(rank, lane=dev.lane)
            for it in range(1, self.config.iterations + 1):
                for side in ("top", "bottom"):
                    nbr = neighbors.get(side)
                    layer = self.boundary_layer(rank, side)
                    if nbr is not None:
                        yield from nv.signal_wait_until(
                            self.signals, SIGNAL_INDEX[side], WaitCond.GE, it
                        )
                    yield from self.compute_layers(
                        dev, rank, it, layer, layer + 1,
                        fraction_of_device=plan.boundary_fraction_per_side,
                        name=f"boundary_{side}",
                    )
                    if nbr is not None:
                        dst = (self.sym[self.write_parity(it)]
                               if self.config.with_data else None)
                        yield from nv.putmem_signal_nbi(
                            dst,
                            self.halo_layer(nbr, self.opposite(side)),
                            self.boundary_values(rank, it, side),
                            self.signals,
                            SIGNAL_INDEX[self.opposite(side)],
                            it + 1,
                            dest_pe=nbr,
                            nbytes=self.halo_nbytes,
                            name=f"halo_{side}",
                        )
                yield from grid.wait()

        return body

    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        if not self.schedule.fuse_boundary:
            yield from super().host_program(rank)
            return
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")
        plan = self.specialization(rank)
        groups = [
            TBGroup("comm", plan.boundary_tb_per_side,
                    self._fused_boundary_body(rank, plan)),
            TBGroup("inner", plan.inner_tb, self._inner_body(rank, plan)),
        ]
        kernel = yield from launch_persistent(
            host, stream, "auto_overlap_jacobi", groups,
            threads_per_block=self.config.threads_per_block,
        )
        yield from host.event_sync(kernel.event)
