"""Baseline Copy: fully CPU-controlled, no explicit boundary overlap.

The NVIDIA ``multi_threaded_copy`` pattern: every time step the host
launches one stencil kernel over the whole local domain, enqueues
host-side ``cudaMemcpyAsync`` P2P copies of the boundary layers into
the neighbors' halos, synchronizes the stream, and joins a host
barrier.  Communication only overlaps the kernel implicitly through
stream asynchrony (§6.1.1 "Baseline Copy").
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.runtime.kernel import KernelSpec
from repro.stencil.base import StencilVariant, register_variant

__all__ = ["BaselineCopy"]


@register_variant
class BaselineCopy(StencilVariant):
    name = "baseline_copy"

    def setup(self) -> None:
        self.setup_regular_buffers()
        self.ctx.memory.enable_all_peer_access()

    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")
        rows = self.local_rows(rank)
        blocks = self.discrete_blocks(self.decomp.interior_elements(rank))
        neighbors = self.neighbors(rank)

        for it in range(1, self.config.iterations + 1):
            # ① full-domain stencil kernel
            def kernel(dev, it=it):
                yield from self.compute_layers(dev, rank, it, 1, rows - 1, name="jacobi")

            yield from host.launch(stream, KernelSpec("jacobi", blocks=blocks), kernel)

            # ② host-initiated halo copies (same stream: after the kernel)
            for side, nbr in neighbors.items():
                if self.config.with_data:
                    assert self.devbufs is not None
                    parity = self.write_parity(it)
                    yield from host.memcpy_async(
                        stream,
                        self.devbufs[nbr][parity],
                        self.halo_layer(nbr, self.opposite(side)),
                        self.devbufs[rank][parity],
                        self.boundary_layer(rank, side),
                        name=f"halo_{side}",
                    )
                else:
                    yield from host.memcpy_async_modeled(
                        stream, rank, nbr, self.halo_nbytes, name=f"halo_{side}"
                    )

            # ③ host waits for the stream, then synchronizes ranks
            yield from host.stream_sync(stream)
            yield from self.barrier(rank)
