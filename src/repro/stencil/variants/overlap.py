"""Baseline Overlap: CPU-controlled with explicit boundary overlap.

Paper Listing 2.1a: the host splits each step into an inner-domain
kernel on ``comp_stream`` and a boundary kernel plus halo copies on
``comm_stream``, synchronizing both streams and the ranks at the end
of every iteration.  The explicit overlap is identical to the
CPU-Free variant's — only the *control path* differs (§6.1.1).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.runtime.kernel import KernelSpec
from repro.stencil.base import StencilVariant, register_variant

__all__ = ["BaselineOverlap"]


@register_variant
class BaselineOverlap(StencilVariant):
    name = "baseline_overlap"

    def setup(self) -> None:
        self.setup_regular_buffers()
        self.ctx.memory.enable_all_peer_access()

    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        host = self.ctx.host(rank)
        comp_stream = self.ctx.stream(rank, "comp")
        comm_stream = self.ctx.stream(rank, "comm")
        rows = self.local_rows(rank)
        plan = self.specialization(rank)
        neighbors = self.neighbors(rank)
        inner_blocks = self.discrete_blocks(self.decomp.inner_elements(rank))
        boundary_blocks = self.discrete_blocks(self.decomp.row_elements)

        for it in range(1, self.config.iterations + 1):
            # ④ boundary kernel + halo copies in comm_stream ...
            def boundary_kernel(dev, it=it):
                for side in ("top", "bottom"):
                    yield from self.compute_layers(
                        dev, rank, it,
                        self.boundary_layer(rank, side),
                        self.boundary_layer(rank, side) + 1,
                        fraction_of_device=plan.boundary_fraction_per_side,
                        name=f"boundary_{side}",
                    )

            yield from host.launch(
                comm_stream, KernelSpec("boundaries", blocks=2 * boundary_blocks),
                boundary_kernel,
            )
            for side, nbr in neighbors.items():
                if self.config.with_data:
                    assert self.devbufs is not None
                    parity = self.write_parity(it)
                    yield from host.memcpy_async(
                        comm_stream,
                        self.devbufs[nbr][parity],
                        self.halo_layer(nbr, self.opposite(side)),
                        self.devbufs[rank][parity],
                        self.boundary_layer(rank, side),
                        name=f"halo_{side}",
                    )
                else:
                    yield from host.memcpy_async_modeled(
                        comm_stream, rank, nbr, self.halo_nbytes, name=f"halo_{side}"
                    )

            # ② ... overlapped with the inner-domain kernel in comp_stream
            def inner_kernel(dev, it=it):
                yield from self.compute_layers(
                    dev, rank, it, 2, rows - 2,
                    fraction_of_device=plan.inner_fraction,
                    name="inner",
                )

            yield from host.launch(
                comp_stream, KernelSpec("inner", blocks=inner_blocks), inner_kernel
            )

            # ⑤ host syncs both streams, then the ranks
            yield from host.stream_sync(comm_stream)
            yield from host.stream_sync(comp_stream)
            yield from self.barrier(rank)
