"""Baseline NVSHMEM: device-side communication in discrete kernels.

Uses the same NVSHMEM put-with-signal family as the CPU-Free variant,
but inside CPU-launched discrete kernels: each time step the host
launches (1) the stencil kernel, which computes and issues the halo
puts, and (2) a dedicated sync kernel that waits on the neighbor
signal flags — "to avoid redundantly synchronizing all processing
elements.  Both kernels are launched by the CPU in every time step"
(§6.1.1 "Baseline NVSHMEM").
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.nvshmem import WaitCond
from repro.runtime.kernel import KernelSpec
from repro.stencil.base import StencilVariant, register_variant

__all__ = ["BaselineNVSHMEM", "SIGNAL_INDEX"]

#: signal word i on a PE means "halo from my <side> neighbor arrived"
SIGNAL_INDEX = {"top": 0, "bottom": 1}


@register_variant
class BaselineNVSHMEM(StencilVariant):
    name = "baseline_nvshmem"
    uses_nvshmem = True

    def setup(self) -> None:
        assert self.nvshmem is not None
        self.setup_symmetric_buffers()
        self.signals = self.nvshmem.malloc_signals("halo_flags", 2)

    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        assert self.nvshmem is not None
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")
        rows = self.local_rows(rank)
        blocks = self.discrete_blocks(self.decomp.interior_elements(rank))
        neighbors = self.neighbors(rank)

        for it in range(1, self.config.iterations + 1):
            # ① stencil kernel: compute, then GPU-initiated halo puts
            def stencil_kernel(dev, it=it):
                nv = self.nvshmem.device(rank, lane=dev.lane)
                yield from self.compute_layers(dev, rank, it, 1, rows - 1, name="jacobi")
                parity = self.write_parity(it)
                for side, nbr in neighbors.items():
                    dst = self.sym[parity] if self.config.with_data else None
                    yield from nv.putmem_signal_nbi(
                        dst,
                        self.halo_layer(nbr, self.opposite(side)),
                        self.boundary_values(rank, it, side),
                        self.signals,
                        SIGNAL_INDEX[self.opposite(side)],
                        it,
                        dest_pe=nbr,
                        nbytes=self.halo_nbytes,
                        name=f"halo_{side}",
                    )

            yield from host.launch(
                stream, KernelSpec("jacobi_nvshmem", blocks=blocks), stencil_kernel
            )

            # ② dedicated neighbor-sync kernel (only adjacent PEs)
            def sync_kernel(dev, it=it):
                nv = self.nvshmem.device(rank, lane=dev.lane)
                for side in neighbors:
                    yield from nv.signal_wait_until(
                        self.signals, SIGNAL_INDEX[side], WaitCond.GE, it
                    )

            yield from host.launch(stream, KernelSpec("neighbor_sync", blocks=1), sync_kernel)

            # ③ host paces the loop with a stream sync (no MPI barrier:
            #    inter-GPU ordering came from the signal waits)
            yield from host.stream_sync(stream)
