"""The §4 alternative design: two co-resident persistent kernels.

Instead of specializing thread blocks inside one kernel, boundary/
communication work and inner-domain compute run as *separate
persistent kernels in separate streams* on the same device.  This is
more modular — the inner kernel can be an existing single-GPU kernel —
"but requires an extra sync point between the local pairs of streams
in each GPU", implemented (as in the paper §4.1.1) by busy-waiting on
flags in local device memory.

The paper reports "no significant performance improvement or
degradation from this design compared to the single-stream version";
the ablation benchmark checks exactly that.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.core import GridBarrier, LocalSpinFlag, TBGroup, launch_persistent
from repro.nvshmem import WaitCond
from repro.runtime.kernel import DeviceKernelContext
from repro.stencil.base import StencilVariant, register_variant
from repro.stencil.variants.nvshmem_discrete import SIGNAL_INDEX

__all__ = ["CPUFreeCoResident"]


@register_variant
class CPUFreeCoResident(StencilVariant):
    name = "cpufree_coresident"
    uses_nvshmem = True

    def setup(self) -> None:
        assert self.nvshmem is not None
        self.setup_symmetric_buffers()
        self.signals = self.nvshmem.malloc_signals("halo_flags", 2)
        for pe in range(self.config.num_gpus):
            for index in SIGNAL_INDEX.values():
                self.signals.flag(pe, index).set(1)
        #: per-rank local-memory handshake flags between the two kernels
        poll = self.config.cost.host_flag_poll_us
        self._comm_done = [
            LocalSpinFlag(self.ctx.sim, poll, name=f"gpu{r}.comm_done")
            for r in range(self.config.num_gpus)
        ]
        self._comp_done = [
            LocalSpinFlag(self.ctx.sim, poll, name=f"gpu{r}.comp_done")
            for r in range(self.config.num_gpus)
        ]
        # both kernels must be simultaneously resident on the device
        for rank in range(self.config.num_gpus):
            plan = self.specialization(rank)
            if plan.tb_total > self.coresident_blocks():
                raise ValueError("combined kernels exceed co-residency budget")

    def _boundary_body(self, rank: int, side: str, plan, iterations: int):
        nbr = self.neighbors(rank).get(side)

        def body(dev: DeviceKernelContext, grid: GridBarrier) -> Generator[Any, Any, None]:
            nv = self.nvshmem.device(rank, lane=dev.lane)
            layer = self.boundary_layer(rank, side)
            for it in range(1, iterations + 1):
                if nbr is not None:
                    yield from nv.signal_wait_until(
                        self.signals, SIGNAL_INDEX[side], WaitCond.GE, it
                    )
                yield from self.compute_layers(
                    dev, rank, it, layer, layer + 1,
                    fraction_of_device=plan.boundary_fraction_per_side,
                    name=f"boundary_{side}",
                )
                if nbr is not None:
                    dst = self.sym[self.write_parity(it)] if self.config.with_data else None
                    yield from nv.putmem_signal_nbi(
                        dst,
                        self.halo_layer(nbr, self.opposite(side)),
                        self.boundary_values(rank, it, side),
                        self.signals,
                        SIGNAL_INDEX[self.opposite(side)],
                        it + 1,
                        dest_pe=nbr,
                        nbytes=self.halo_nbytes,
                        name=f"halo_{side}",
                    )
                yield from grid.wait()
                # extra local sync point between the stream pair (§4):
                if side == "top":
                    self._comm_done[rank].post(it)
                yield from self._comp_done[rank].wait_until(it)

        return body

    def _inner_body(self, rank: int, plan, iterations: int):
        rows = self.local_rows(rank)
        tiling = self.inner_tiling_factor(rank, plan)

        def body(dev: DeviceKernelContext, grid: GridBarrier) -> Generator[Any, Any, None]:
            for it in range(1, iterations + 1):
                yield from self.compute_layers(
                    dev, rank, it, 2, rows - 2,
                    fraction_of_device=plan.inner_fraction,
                    tiling_factor=tiling,
                    name="inner",
                )
                yield from grid.wait()
                self._comp_done[rank].post(it)
                yield from self._comm_done[rank].wait_until(it)

        return body

    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        host = self.ctx.host(rank)
        comm_stream = self.ctx.stream(rank, "comm")
        comp_stream = self.ctx.stream(rank, "comp")
        plan = self.specialization(rank)
        iterations = self.config.iterations

        comm_kernel = yield from launch_persistent(
            host, comm_stream, "comm_kernel",
            [TBGroup("comm_top", plan.boundary_tb_per_side,
                     self._boundary_body(rank, "top", plan, iterations)),
             TBGroup("comm_bottom", plan.boundary_tb_per_side,
                     self._boundary_body(rank, "bottom", plan, iterations))],
            threads_per_block=self.config.threads_per_block,
        )
        comp_kernel = yield from launch_persistent(
            host, comp_stream, "comp_kernel",
            [TBGroup("inner", plan.inner_tb,
                     self._inner_body(rank, plan, iterations))],
            threads_per_block=self.config.threads_per_block,
        )
        yield from host.event_sync(comm_kernel.event)
        yield from host.event_sync(comp_kernel.event)
