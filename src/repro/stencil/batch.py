"""Batched stencil execution: one simulation for a stack of sweep points.

A *batch group* is a set of timing-only stencil points that differ only
in ``global_shape`` (same variant, GPU count, iterations, cost model,
...).  Such points run the same event structure — the same processes
taking the same steps in the same order — with different numeric
latencies.  :func:`run_batched_stencil` executes the whole group in a
single discrete-event simulation whose clock carries one component per
member (:mod:`repro.sim.stacked`), then demultiplexes the vector-valued
timeline, metrics, and totals back into per-point
:class:`~repro.stencil.base.StencilResult` objects that are
byte-identical to what the per-point path produces.

Any control-flow decision that would differ across members raises
:class:`~repro.sim.stacked.BatchDivergence`; the sweep scheduler
(:mod:`repro.perf.batch`) catches it and falls back to per-point runs,
so batching is strictly an optimization, never a semantic change.
"""

from __future__ import annotations

import dataclasses
import gc
from typing import Sequence

from repro.obs.batch import BatchMetrics
from repro.obs.metrics import use_metrics
from repro.sim.stacked import (
    WAIT_SPAN,
    BatchDivergence,
    emax,
    members,
    stacked_val,
)
from repro.sim.trace import Span, Tracer
from repro.stencil.base import VARIANTS, StencilConfig, StencilResult

__all__ = ["batch_stencil_config", "demux_tracer", "run_batched_stencil"]


def batch_stencil_config(configs: Sequence[StencilConfig]) -> StencilConfig:
    """One config whose ``global_shape`` axes stack the group's shapes.

    Axes on which every member agrees stay plain ints (scalar arithmetic
    is cheaper and cannot diverge); differing axes become
    :class:`~repro.sim.stacked.BatchVal` stacks.
    """
    base = configs[0]
    axes = []
    for axis in range(len(base.global_shape)):
        values = [c.global_shape[axis] for c in configs]
        if all(v == values[0] for v in values[1:]):
            axes.append(values[0])
        else:
            axes.append(stacked_val(values))
    return dataclasses.replace(base, global_shape=tuple(axes))


def demux_tracer(tracer: Tracer, B: int) -> list[Tracer]:
    """Split a vector-timed tracer into B per-member tracers.

    Spans tagged with the :data:`~repro.sim.stacked.WAIT_SPAN` sentinel
    were recorded because *some* member waited; each member keeps the
    span only if its own wait had nonzero duration, reproducing the
    per-point path's ``end > start`` guard member by member.
    """
    outs = [Tracer() for _ in range(B)]
    # Spans are constructed directly (not via Tracer.record): the joint
    # run already validated every endpoint pair, and the per-member
    # views inherit that validity, so the demux loop skips the check.
    span_lists = [out.spans for out in outs]
    for span in tracer.spans:
        starts = members(span.start, B)
        ends = members(span.end, B)
        lane = span.lane
        name = span.name
        category = span.category
        if span.meta is WAIT_SPAN:
            for m in range(B):
                if ends[m] > starts[m]:
                    span_lists[m].append(
                        Span(lane, name, category, starts[m], ends[m]))
        else:
            meta = span.meta
            for m in range(B):
                span_lists[m].append(
                    Span(lane, name, category, starts[m], ends[m], meta))
    for name, ts, value in tracer.counter_samples:
        times = members(ts, B)
        values = members(value, B)
        for m, out in enumerate(outs):
            out.add_counter(name, times[m], values[m])
    for ts, name, category, args in tracer.instant_events:
        times = members(ts, B)
        for m, out in enumerate(outs):
            out.instant_events.append((times[m], name, category, args))
    return outs


def run_batched_stencil(
    variant_name: str,
    configs: Sequence[StencilConfig],
    with_metrics: bool = True,
) -> tuple[list[StencilResult], list[dict | None]]:
    """Run a batch group in one simulation; demux per-point results.

    Returns ``(results, dumps)`` in member order, where each dump is the
    metrics registry ``to_dict()`` the per-point path would have
    produced (``None`` entries when ``with_metrics`` is false).

    Raises :class:`BatchDivergence` when the group violates a batching
    precondition or member control flow diverges mid-run — callers fall
    back to per-point execution.
    """
    B = len(configs)
    base = configs[0]
    if base.with_data:
        raise BatchDivergence("with_data points are not batchable")
    if base.fault_profile is not None:
        raise BatchDivergence("faulted points are not batchable")
    for other in configs[1:]:
        if dataclasses.replace(other, global_shape=base.global_shape) != base:
            raise BatchDivergence("group members differ beyond global_shape")
    cfg = batch_stencil_config(configs)
    if cfg.fault_profile is not None:
        # replace() re-resolved an ambient fault profile into the copy
        raise BatchDivergence("ambient fault profile active")

    # The fused run allocates stacked tuples at a rate that makes gen-0
    # collections a measurable fraction of its wall time; nothing in a
    # timing-only run creates reference cycles, so pause collection for
    # the (short) run and restore the collector's prior state after.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _run_batched_locked(variant_name, configs, cfg, B, with_metrics)
    finally:
        if gc_was_enabled:
            gc.enable()


def _run_batched_locked(
    variant_name: str,
    configs: Sequence[StencilConfig],
    cfg: StencilConfig,
    B: int,
    with_metrics: bool,
) -> tuple[list[StencilResult], list[dict | None]]:
    registry = BatchMetrics(B) if with_metrics else None
    with use_metrics(registry):
        variant = VARIANTS[variant_name](cfg)
        sim = variant.ctx.sim
        sim.batch_members = B
        # Mirror StencilVariant.run() step for step; the one difference
        # is that totals/metrics/trace come out vector-valued and are
        # demultiplexed below instead of consumed directly.
        variant.setup()
        for rank in range(cfg.num_gpus):
            sim.spawn(variant.host_program(rank),
                      name=f"{variant.name}.host{rank}",
                      shard=variant.ctx.domain_of(rank))
        total = variant.ctx.run()
        # The joint clock ends on the *pilot's* last event; another
        # member's latest event may sit elsewhere, so fold every
        # process's finish time (scalar runs: a no-op, the final clock
        # already bounds them).
        for proc in sim._processes:
            if proc._finish_time is not None:
                total = emax(total, proc._finish_time)
        m = variant.ctx.metrics
        if m is not None:
            m.counter("stencil.runs", variant=variant_name).inc()
            m.counter("stencil.iterations", variant=variant_name).inc(
                cfg.iterations
            )
            m.counter("stencil.sim_time_us", variant=variant_name).inc(total)

    tracers = demux_tracer(variant.tracer, B)
    totals = members(total, B)
    results = []
    for i in range(B):
        tr = tracers[i]
        results.append(StencilResult(
            variant=variant_name,
            config=configs[i],
            total_time_us=totals[i],
            comm_time_us=tr.total("comm"),
            sync_time_us=tr.total("sync"),
            api_time_us=tr.total("api"),
            overlap_ratio=tr.overlap_ratio(),
            tracer=tr,
            result=None,
        ))
    dumps: list[dict | None]
    if registry is not None:
        dumps = registry.dumps()
    else:
        dumps = [None] * B
    return results, dumps
