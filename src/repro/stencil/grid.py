"""Domain decomposition: slabs, halos, process grids.

The hand-written stencils (paper §4) use a 1-D slab decomposition
along axis 0 (rows in 2D, z-planes in 3D) with one halo layer per
neighbor.  The DaCe 2D benchmark (§6.2.2) uses a 2-D process grid,
whose non-square factorizations at P ∈ {2, 8} cause the baseline's
"rectangular split" inefficiency the paper remarks on.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

__all__ = [
    "SlabDecomposition",
    "best_process_grid",
    "gather_slabs",
    "scatter_slabs",
    "slab_partition",
]


def slab_partition(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``n`` items into ``parts`` contiguous near-equal ranges.

    The first ``n % parts`` ranges get one extra item, matching the
    usual MPI block distribution.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if n < parts:
        raise ValueError(f"cannot split {n} items into {parts} non-empty parts")
    base, extra = divmod(n, parts)
    ranges = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def best_process_grid(p: int) -> tuple[int, int]:
    """Near-square factorization ``(py, px)`` of ``p`` with py >= px.

    P=1→(1,1), 2→(2,1), 4→(2,2), 8→(4,2): exactly the splits behind
    the paper's observation that 2 and 8 GPUs give a rectangular
    (unbalanced-perimeter) partition while 4 is square.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    best = (p, 1)
    for px in range(1, int(p**0.5) + 1):
        if p % px == 0:
            best = (p // px, px)
    return best


def wide_process_grid(p: int) -> tuple[int, int]:
    """Near-square factorization ``(py, px)`` with py <= px.

    The layout DaCe-style Cartesian communicators default to.  Combined
    with a weak-scaling sweep that grows the domain along axis 0 first,
    non-square GPU counts (2, 8) produce rectangular tiles with *long
    strided columns* — the unbalanced-partition inefficiency the paper
    observes in the Fig 6.3b baseline.
    """
    py, px = best_process_grid(p)
    return (px, py)


@dataclass(frozen=True)
class SlabDecomposition:
    """1-D decomposition of a Jacobi domain along axis 0.

    ``global_shape`` includes the Dirichlet boundary ring.  Only the
    axis-0 *interior* (indices ``1 .. shape[0]-2``) is distributed;
    each rank's local array has that chunk plus one halo layer on each
    side, so ``local_shape(r) = (chunk + 2, *global_shape[1:])``.
    """

    global_shape: tuple[int, ...]
    num_ranks: int

    def __post_init__(self) -> None:
        if len(self.global_shape) not in (2, 3):
            raise ValueError("only 2D and 3D domains supported")
        if any(s < 3 for s in self.global_shape):
            raise ValueError("every axis needs at least 3 points (boundary + interior)")
        interior = self.global_shape[0] - 2
        if self.num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if interior < 3 * self.num_ranks:
            raise ValueError(
                f"axis-0 interior of {interior} too small for {self.num_ranks} ranks "
                f"(need >= 3 rows per rank for inner/boundary split)"
            )

    @property
    def ndim(self) -> int:
        return len(self.global_shape)

    # cached: recomputed-per-access partitions showed up in sweep
    # profiles (cached_property writes through the frozen dataclass's
    # __dict__, so freezing is preserved for the declared fields)
    @functools.cached_property
    def ranges(self) -> list[tuple[int, int]]:
        """Global interior index ranges (axis 0, 1-based offset applied)."""
        interior = self.global_shape[0] - 2
        return [(lo + 1, hi + 1) for lo, hi in slab_partition(interior, self.num_ranks)]

    def chunk_rows(self, rank: int) -> int:
        lo, hi = self.ranges[rank]
        return hi - lo

    def local_shape(self, rank: int) -> tuple[int, ...]:
        return (self.chunk_rows(rank) + 2, *self.global_shape[1:])

    def neighbors(self, rank: int) -> dict[str, int]:
        """``{"top": r-1, "bottom": r+1}`` omitting absent neighbors."""
        self._check_rank(rank)
        out: dict[str, int] = {}
        if rank > 0:
            out["top"] = rank - 1
        if rank < self.num_ranks - 1:
            out["bottom"] = rank + 1
        return out

    # -- element accounting (used for compute-time charging) -------------------

    @functools.cached_property
    def row_elements(self) -> int:
        """Updated elements in one axis-0 layer (excludes Dirichlet ring)."""
        if self.ndim == 2:
            return self.global_shape[1] - 2
        return (self.global_shape[1] - 2) * (self.global_shape[2] - 2)

    @functools.cached_property
    def halo_elements(self) -> int:
        """Elements transferred per halo layer (full layer, as real codes do)."""
        if self.ndim == 2:
            return self.global_shape[1]
        return self.global_shape[1] * self.global_shape[2]

    def interior_elements(self, rank: int) -> int:
        return self.chunk_rows(rank) * self.row_elements

    def inner_elements(self, rank: int) -> int:
        """Interior minus the two boundary layers."""
        return (self.chunk_rows(rank) - 2) * self.row_elements

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range")


def scatter_slabs(grid: np.ndarray, decomp: SlabDecomposition) -> list[np.ndarray]:
    """Split a global array into per-rank local arrays (with halos).

    Halo layers are filled from the neighbors' initial data, so the
    first iteration needs no prior exchange.
    """
    if grid.shape != decomp.global_shape:
        raise ValueError(f"grid shape {grid.shape} != decomposition {decomp.global_shape}")
    locals_: list[np.ndarray] = []
    for lo, hi in decomp.ranges:
        locals_.append(np.array(grid[lo - 1 : hi + 1]))
    return locals_


def gather_slabs(locals_: list[np.ndarray], decomp: SlabDecomposition,
                 boundary: np.ndarray) -> np.ndarray:
    """Reassemble the global array from local interiors.

    ``boundary`` supplies the Dirichlet ring (typically the initial
    global array — the ring never changes).
    """
    if len(locals_) != decomp.num_ranks:
        raise ValueError("wrong number of local arrays")
    out = np.array(boundary)
    for rank, (lo, hi) in enumerate(decomp.ranges):
        out[lo:hi] = locals_[rank][1:-1]
    return out
