"""Jacobi stencil applications — the paper's proof-of-concept workload.

Provides 2D 5-point and 3D 7-point iterative Jacobi solvers over a
slab-decomposed multi-GPU domain, in six communication variants
matching the paper's §6.1.1 evaluation matrix:

================   ====================================================
baseline_copy      CPU-controlled; host ``cudaMemcpyAsync`` halo
                   copies, host barrier each step (NVIDIA sample)
baseline_overlap   adds explicit boundary/inner overlap with separate
                   streams and events (still host-controlled)
baseline_p2p       device-side direct load/store halo writes inside
                   the kernel; *synchronization* still host-side
baseline_nvshmem   discrete kernels using device-side NVSHMEM puts and
                   a dedicated neighbor-sync kernel, both launched by
                   the CPU every time step
cpufree            the paper's model: one persistent kernel, TB
                   specialization, device-side signaling (Listing 4.1)
cpufree_perks      cpufree communication around a PERKS-style cached
                   inner kernel (better tiling + cross-iteration cache)
================   ====================================================

All variants actually compute (NumPy) when data is enabled, so every
protocol is validated against :mod:`repro.stencil.reference`.
"""

from repro.stencil.grid import (
    SlabDecomposition,
    best_process_grid,
    gather_slabs,
    scatter_slabs,
    slab_partition,
)
from repro.stencil.reference import jacobi_reference, jacobi_step
from repro.stencil.base import (
    StencilConfig,
    StencilResult,
    VARIANTS,
    variant_names,
)
from repro.stencil.runner import run_variant

__all__ = [
    "SlabDecomposition",
    "StencilConfig",
    "StencilResult",
    "VARIANTS",
    "best_process_grid",
    "gather_slabs",
    "jacobi_reference",
    "jacobi_step",
    "run_variant",
    "scatter_slabs",
    "slab_partition",
    "variant_names",
]
