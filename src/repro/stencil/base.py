"""Shared stencil-variant harness: configuration, buffers, metrics.

A variant is a class implementing :meth:`StencilVariant.host_program`
(one simulated host process per rank) over the shared facilities here:
slab decomposition, double-buffered per-rank arrays (regular device
memory or NVSHMEM symmetric heap), compute-time charging that also
performs the real NumPy update, halo-index arithmetic, and metric
extraction from the timeline tracer.

Double-buffer convention (all variants): at iteration ``it`` (1-based)
kernels read parity ``(it-1) % 2`` and write parity ``it % 2``; halo
exchanges deliver boundary layers of the write buffer into the
neighbor's write buffer, so the next iteration's read buffer always
has fresh halos.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Generator
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.core import SpecializationPlan, plan_blocks
from repro.faults.profiles import active_fault_profile, get_injector
from repro.hw import DEFAULT_COST_MODEL, HGX_A100_8GPU, CostModel, DeviceBuffer, NodeSpec
from repro.nvshmem import NVSHMEMRuntime, SymmetricArray
from repro.runtime import MultiGPUContext
from repro.runtime.kernel import DeviceKernelContext
from repro.runtime.mpi import HostBarrier
from repro.sim import Tracer
from repro.sim.stacked import Stacked, stacked_val
from repro.stencil.grid import SlabDecomposition, gather_slabs, scatter_slabs
from repro.stencil.reference import update_layers

__all__ = [
    "StencilConfig",
    "StencilResult",
    "StencilVariant",
    "VARIANTS",
    "default_initial",
    "register_variant",
    "variant_names",
]


def default_initial(shape: tuple[int, ...], seed: int = 2024) -> np.ndarray:
    """Deterministic non-trivial initial condition.

    Random interior (strong correctness signal — any halo mix-up
    changes the result) with heated Dirichlet edges.
    """
    rng = np.random.default_rng(seed)
    u = rng.random(shape)
    u[0] = 1.0
    u[-1] = 0.5
    if len(shape) == 2:
        u[:, 0] = 0.25
        u[:, -1] = 0.75
    else:
        u[:, 0, :] = 0.25
        u[:, -1, :] = 0.75
        u[:, :, 0] = 0.1
        u[:, :, -1] = 0.9
    return u


@dataclass(frozen=True)
class StencilConfig:
    """One stencil experiment.

    ``no_compute``
        Skip all stencil arithmetic *and* its simulated time — the
        paper's "communication and synchronization overheads with no
        computation" mode (Fig. 2.2a, Fig. 6.2 middle).
    ``with_data``
        Allocate real NumPy arrays and compute them.  Disable for
        large timing sweeps; timing is identical either way because
        simulated time is charged analytically.
    ``fault_profile``
        Fault-profile spec (``"transient"``, ``"lost_signal@7"``, ...)
        or ``None`` for a fault-free run.  Defaults to the ambient
        profile installed via ``repro.faults.use_fault_profile`` —
        resolved here, at construction time in the main process, so the
        spec travels to sweep workers inside the (pickled, cache-keyed)
        config rather than as module state.
    ``coalesce_comm``
        Allow the NVSHMEM transport to batch same-route same-arrival
        delivery legs into one engine event.  Results are identical
        either way (enforced by property tests); the switch exists for
        A/B verification and rides in the config repr so both settings
        key distinct sweep-cache entries.
    ``shard_scheduler``
        Partition the engine calendar into per-NVSwitch-domain lanes
        (hierarchical nodes only; results are byte-identical either
        way — enforced by property tests).  ``None`` = shard whenever
        the topology has more than one domain.
    """

    global_shape: tuple[int, ...]
    num_gpus: int
    iterations: int
    node: NodeSpec = HGX_A100_8GPU
    cost: CostModel = DEFAULT_COST_MODEL
    no_compute: bool = False
    with_data: bool = True
    threads_per_block: int = 1024
    seed: int = 2024
    fault_profile: str | None = None
    coalesce_comm: bool = True
    shard_scheduler: bool | None = None

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.num_gpus > self.node.num_gpus:
            object.__setattr__(self, "node", self.node.scaled_to(self.num_gpus))
        if self.fault_profile is None:
            object.__setattr__(self, "fault_profile", active_fault_profile())


@dataclass
class StencilResult:
    """Measured outcome of one variant run."""

    variant: str
    config: StencilConfig
    total_time_us: float
    comm_time_us: float
    sync_time_us: float
    api_time_us: float
    overlap_ratio: float
    tracer: Tracer
    result: np.ndarray | None = None

    @property
    def per_iteration_us(self) -> float:
        return self.total_time_us / self.config.iterations

    def speedup_over(self, baseline: "StencilResult") -> float:
        """Paper §6 speedup formula, in percent."""
        return (baseline.total_time_us - self.total_time_us) / baseline.total_time_us * 100.0

    def device_utilization(self) -> dict[int, float]:
        """Fraction of wall time each GPU spent computing.

        The complement of the paper's overhead argument: CPU-controlled
        execution leaves devices idle while the host orchestrates.
        """
        if self.total_time_us == 0.0:
            return {d: 0.0 for d in range(self.config.num_gpus)}
        out = {}
        for device in range(self.config.num_gpus):
            busy = self.tracer.total("compute", lane_prefix=f"gpu{device}.")
            out[device] = busy / self.total_time_us
        return out


VARIANTS: dict[str, type["StencilVariant"]] = {}


def register_variant(cls: type["StencilVariant"]) -> type["StencilVariant"]:
    """Class decorator adding a variant to the global registry."""
    if not cls.name:
        raise ValueError("variant needs a name")
    if cls.name in VARIANTS:
        raise ValueError(f"duplicate variant {cls.name!r}")
    VARIANTS[cls.name] = cls
    return cls


def variant_names() -> list[str]:
    return sorted(VARIANTS)


class StencilVariant(abc.ABC):
    """Base class wiring a variant into the simulator."""

    name: ClassVar[str] = ""
    #: whether this variant allocates NVSHMEM symmetric buffers
    uses_nvshmem: ClassVar[bool] = False

    def __init__(self, config: StencilConfig) -> None:
        self.config = config
        self.decomp = SlabDecomposition(config.global_shape, config.num_gpus)
        self.tracer = Tracer()
        #: per-run fault injector (None = fault plane inert)
        self.faults = get_injector(config.fault_profile)
        self.ctx = MultiGPUContext(
            config.node.scaled_to(config.num_gpus), config.cost, self.tracer,
            faults=self.faults, coalesce_comm=config.coalesce_comm,
            shard_scheduler=config.shard_scheduler,
        )
        self.nvshmem: NVSHMEMRuntime | None = (
            NVSHMEMRuntime(self.ctx) if self.uses_nvshmem else None
        )
        self._host_barrier = HostBarrier(
            self.ctx.sim,
            config.num_gpus,
            config.cost.mpi_barrier_us(config.num_gpus),
            name="stencil.host",
        )
        # Full-domain initial data is only materialized when the run
        # actually computes on it; timing-only sweeps skip the (large)
        # allocation entirely.
        self.initial = (
            default_initial(config.global_shape, config.seed)
            if config.with_data else None
        )
        #: per-rank [parity0, parity1] NumPy views (None when data disabled)
        self.arrays: list[list[np.ndarray]] | None = None
        #: per-rank [parity0, parity1] DeviceBuffers (regular-memory variants)
        self.devbufs: list[list[DeviceBuffer]] | None = None
        #: [parity0, parity1] SymmetricArrays (NVSHMEM variants)
        self.sym: list[SymmetricArray] | None = None
        self.halo_nbytes = self.decomp.halo_elements * 8

    # -- buffer setup -----------------------------------------------------------

    def setup_regular_buffers(self) -> None:
        """cudaMalloc-style double buffers on each device."""
        if not self.config.with_data:
            return
        locals_ = scatter_slabs(self.initial, self.decomp)
        self.devbufs = []
        self.arrays = []
        for rank in range(self.config.num_gpus):
            b0 = self.ctx.alloc(rank, "u0", locals_[rank].shape, fill=None)
            b1 = self.ctx.alloc(rank, "u1", locals_[rank].shape, fill=None)
            b0.data[...] = locals_[rank]
            b1.data[...] = locals_[rank]
            self.devbufs.append([b0, b1])
            self.arrays.append([b0.data, b1.data])

    def setup_symmetric_buffers(self) -> None:
        """nvshmem_malloc-style symmetric double buffers.

        The slabs may have unequal row counts; symmetric allocation is
        same-shaped on every PE, so we allocate the maximum local shape
        (real NVSHMEM codes do exactly this padding).
        """
        assert self.nvshmem is not None
        if not self.config.with_data:
            return
        locals_ = scatter_slabs(self.initial, self.decomp)
        max_rows = max(arr.shape[0] for arr in locals_)
        shape = (max_rows, *self.config.global_shape[1:])
        u0 = self.nvshmem.malloc("u0", shape, fill=0.0)
        u1 = self.nvshmem.malloc("u1", shape, fill=0.0)
        self.sym = [u0, u1]
        self.arrays = []
        for rank in range(self.config.num_gpus):
            rows = locals_[rank].shape[0]
            u0.local(rank)[:rows] = locals_[rank]
            u1.local(rank)[:rows] = locals_[rank]
            self.arrays.append([u0.local(rank)[:rows], u1.local(rank)[:rows]])

    # -- indices and parities ------------------------------------------------------

    @staticmethod
    def read_parity(it: int) -> int:
        return (it - 1) % 2

    @staticmethod
    def write_parity(it: int) -> int:
        return it % 2

    def local_rows(self, rank: int) -> int:
        return self.decomp.chunk_rows(rank) + 2

    def boundary_layer(self, rank: int, side: str) -> int:
        """Local axis-0 index of the boundary layer on ``side``."""
        return 1 if side == "top" else self.local_rows(rank) - 2

    def halo_layer(self, rank: int, side: str) -> int:
        """Local axis-0 index of the halo layer on ``side``."""
        return 0 if side == "top" else self.local_rows(rank) - 1

    @staticmethod
    def opposite(side: str) -> str:
        return "bottom" if side == "top" else "top"

    def neighbors(self, rank: int) -> dict[str, int]:
        return self.decomp.neighbors(rank)

    # -- compute -----------------------------------------------------------------

    def compute_layers(
        self,
        dev: DeviceKernelContext,
        rank: int,
        it: int,
        lo: int,
        hi: int,
        *,
        fraction_of_device: float = 1.0,
        tiling_factor: float = 1.0,
        perks_residency: float = 0.0,
        name: str = "compute",
    ) -> Generator[Any, Any, None]:
        """Charge compute time for layers ``[lo, hi)`` and do the math."""
        if self.config.no_compute:
            return
        elements = (hi - lo) * self.decomp.row_elements
        yield from dev.compute(
            elements,
            fraction_of_device=fraction_of_device,
            tiling_factor=tiling_factor,
            perks_residency=perks_residency,
            name=name,
        )
        if self.config.with_data:
            assert self.arrays is not None
            read = self.arrays[rank][self.read_parity(it)]
            write = self.arrays[rank][self.write_parity(it)]
            update_layers(read, write, lo, hi)
            san = self.ctx.sanitizer
            if san is not None and self.sym is not None:
                # local rows map 1:1 onto symmetric-buffer rows (the
                # views are leading-row slices of the padded buffers)
                san.record_symmetric(
                    self.sym[self.read_parity(it)], rank, slice(lo - 1, hi + 1),
                    "read", site=f"{self.name}.{name}", by_pe=rank, label=f"it={it}",
                )
                san.record_symmetric(
                    self.sym[self.write_parity(it)], rank, slice(lo, hi),
                    "write", site=f"{self.name}.{name}", by_pe=rank, label=f"it={it}",
                )

    def boundary_values(self, rank: int, it: int, side: str) -> np.ndarray | float:
        """Boundary layer of the write buffer (what gets sent), or a
        placeholder scalar in timing-only mode."""
        if not self.config.with_data:
            return 0.0
        assert self.arrays is not None
        layer = self.boundary_layer(rank, side)
        san = self.ctx.sanitizer
        if san is not None and self.sym is not None:
            san.record_symmetric(
                self.sym[self.write_parity(it)], rank, layer,
                "read", site=f"{self.name}.send_{side}", by_pe=rank, label=f"it={it}",
            )
        return self.arrays[rank][self.write_parity(it)][layer]

    # -- discrete-kernel grid sizing -----------------------------------------------

    def discrete_blocks(self, elements: int) -> int:
        """Grid size of a discrete (non-cooperative) kernel."""
        if isinstance(elements, Stacked):
            # Batched sweep: the max(1, ...) clamp branches per member.
            per = [self.discrete_blocks(e) for e in elements.v]
            if all(b == per[0] for b in per[1:]):
                return per[0]
            return stacked_val(per)
        return max(1, math.ceil(elements / self.config.threads_per_block))

    def specialization(self, rank: int) -> SpecializationPlan:
        """TB split for this rank (paper §4.1.2 formula)."""
        sides = len(self.neighbors(rank))
        # Boundary layers facing the Dirichlet edge still need a group
        # (they compute, just don't communicate); count them as sides.
        return plan_blocks(
            self.coresident_blocks(),
            self.decomp.inner_elements(rank),
            self.decomp.row_elements,
            sides=2,
        )

    def coresident_blocks(self) -> int:
        return self.ctx.node.gpu.max_coresident_blocks(self.config.threads_per_block)

    def inner_tiling_factor(self, rank: int, plan: SpecializationPlan) -> float:
        """Software-tiling slowdown of the persistent inner kernel."""
        resident_threads = plan.inner_tb * self.config.threads_per_block
        return self.config.cost.tiling_factor(
            self.decomp.inner_elements(rank), resident_threads
        )

    # -- host-side synchronization -----------------------------------------------------

    def barrier(self, rank: int) -> Generator[Any, Any, None]:
        """OpenMP/MPI-style host barrier across all ranks."""
        start = self.ctx.sim.now
        yield from self._host_barrier.wait()
        self.ctx.trace(f"host{rank}", "host_barrier", "sync", start, self.ctx.sim.now)

    # -- the variant program ---------------------------------------------------------

    @abc.abstractmethod
    def setup(self) -> None:
        """Allocate buffers/signals before host processes start."""

    @abc.abstractmethod
    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        """The host process driving GPU ``rank``."""

    # -- execution ------------------------------------------------------------------

    def run(self) -> StencilResult:
        """Set up, simulate all ranks, gather data and metrics."""
        self.setup()
        for rank in range(self.config.num_gpus):
            self.ctx.sim.spawn(self.host_program(rank), name=f"{self.name}.host{rank}",
                               shard=self.ctx.domain_of(rank))
        total = self.ctx.run()
        m = self.ctx.metrics
        if m is not None:
            m.counter("stencil.runs", variant=self.name).inc()
            m.counter("stencil.iterations", variant=self.name).inc(
                self.config.iterations
            )
            m.counter("stencil.sim_time_us", variant=self.name).inc(total)
        result = None
        if self.config.with_data and not self.config.no_compute and self.arrays is not None:
            parity = self.write_parity(self.config.iterations)
            result = gather_slabs(
                [self.arrays[r][parity] for r in range(self.config.num_gpus)],
                self.decomp,
                self.initial,
            )
        return StencilResult(
            variant=self.name,
            config=self.config,
            total_time_us=total,
            comm_time_us=self.tracer.total("comm"),
            sync_time_us=self.tracer.total("sync"),
            api_time_us=self.tracer.total("api"),
            overlap_ratio=self.tracer.overlap_ratio(),
            tracer=self.tracer,
            result=result,
        )
