"""Shared conventions for the ``python -m repro.*`` command-line tools.

All four CLIs (:mod:`repro.obs`, :mod:`repro.bench`, :mod:`repro.faults`,
:mod:`repro.sanitize`) report user-facing invocation failures the same
way argparse does: one ``error: <message>`` line on stderr and exit
status 2.  Code under a CLI's ``main`` raises :class:`CliError`; the
module entry point wraps ``main`` in :func:`cli_entry`, which renders
the error.  Exit status 1 stays reserved for "the tool ran and the
verdict is bad" (regressions, races, violated expectations), so scripts
can distinguish a bad verdict from a bad invocation.

:func:`parse_shape` is the shared ``argparse`` type for ``WxH[xD]``
domain shapes, previously copy-pasted into three CLIs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

__all__ = ["CliError", "cli_entry", "parse_shape"]


class CliError(Exception):
    """A user-facing invocation failure (unknown name, unreadable file).

    The message is shown as ``error: <message>``; it should name the bad
    input and, where possible, the valid choices.
    """


def cli_entry(main: Callable[[list[str] | None], int],
              argv: list[str] | None = None) -> int:
    """Run a CLI ``main``, rendering :class:`CliError` per convention."""
    try:
        return main(argv)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def parse_shape(text: str) -> tuple[int, ...]:
    """``argparse`` type for global domain shapes like ``66x130``."""
    try:
        shape = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad shape {text!r}: expected e.g. 66x130 or 34x34x34"
        ) from None
    if not shape or any(dim <= 0 for dim in shape):
        raise argparse.ArgumentTypeError(
            f"bad shape {text!r}: dims must be positive")
    return shape
