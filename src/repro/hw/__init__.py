"""Hardware models: GPU specs, node topology, interconnect, memory.

This package is the simulated stand-in for the paper's testbed — an
NVIDIA HGX node with 8 A100 GPUs connected all-to-all through
NVLink/NVSwitch.  It provides:

- :class:`~repro.hw.spec.GPUSpec` — per-device capabilities (SM count,
  HBM bandwidth, occupancy limits) with the A100-SXM4-80GB preset,
- :class:`~repro.hw.interconnect.NodeTopology` — link graph with
  per-pair bandwidth/latency and transfer-time computation,
- :class:`~repro.hw.memory.DeviceBuffer` / ``MemoryManager`` — device
  allocations with storage classes (global vs. NVSHMEM symmetric heap),
- :class:`~repro.hw.calibration.CostModel` — every latency constant the
  discrete-event simulation charges, documented against the paper.
"""

from repro.hw.calibration import CostModel, DEFAULT_COST_MODEL
from repro.hw.interconnect import (
    ClusterTopology,
    Link,
    NodeTopology,
    RailLink,
    build_topology,
)
from repro.hw.memory import DeviceBuffer, MemoryManager, Storage
from repro.hw.spec import A100_SXM4_80GB, GPUSpec, HGX_A100_8GPU, NodeSpec

__all__ = [
    "A100_SXM4_80GB",
    "ClusterTopology",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DeviceBuffer",
    "GPUSpec",
    "HGX_A100_8GPU",
    "Link",
    "MemoryManager",
    "NodeSpec",
    "NodeTopology",
    "RailLink",
    "Storage",
    "build_topology",
]
