"""Latency calibration — every microsecond the simulator charges.

The CPU-Free paper's results are, at bottom, an accounting of which
control-path latencies each execution model pays per iteration:

==============================  =======================================
CPU-controlled versions pay     kernel launches, stream synchronizes,
                                event waits, memcpy enqueues, MPI/OpenMP
                                host barriers — all per time step
CPU-Free pays                   device-side grid sync + NVSHMEM
                                put/signal latencies only
==============================  =======================================

The constants below are representative of an A100/NVLink/NVSHMEM-2.x
system (microseconds unless stated otherwise) and were chosen so that
the reproduction's *relative* results match the paper's headline
numbers; see EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from repro.sim.stacked import Stacked

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


def _bytes_per_us(gbps: float) -> float:
    """1 GB/s == 1e9 bytes / 1e6 us == 1000 bytes/us."""
    return gbps * 1000.0


@dataclass(frozen=True)
class CostModel:
    """All tunable latency/bandwidth constants (microseconds / GB/s)."""

    # --- host-side CUDA runtime API -------------------------------------
    kernel_launch_us: float = 3.2          #: host->device launch latency
    cooperative_launch_extra_us: float = 1.5  #: extra validation for coop launch
    api_enqueue_us: float = 1.0            #: generic runtime call (enqueue) overhead
    stream_sync_us: float = 3.0            #: cudaStreamSynchronize base cost
    event_record_us: float = 0.6
    event_sync_us: float = 1.5
    memcpy_enqueue_us: float = 1.6         #: cudaMemcpyAsync host-side cost

    # --- host-side communication (OpenMP/MPI layer) ---------------------
    mpi_message_latency_us: float = 10.0   #: per Send/Recv pair, device buffers
    mpi_vector_pack_overhead: float = 2.4  #: MPI_Type_vector pack/unpack factor
    #: per-element cost of packing an MPI_Type_vector that lives in GPU
    #: memory: the pack loop touches device memory element-wise over
    #: PCIe/driver round trips, which is why the paper's DaCe 2D
    #: baseline is ">99% communication" (§6.2.3)
    mpi_vector_element_us: float = 0.45
    #: per-rank cost of the host-side rendezvous (OpenMP/MPI barrier plus
    #: the driver-contention tail it provokes each step).  Calibrated so
    #: that the fully CPU-controlled baselines reproduce Fig 2.2's ~96%
    #: communication fraction on small domains at 8 GPUs; grows linearly
    #: with the number of participating ranks.
    mpi_barrier_base_us: float = 20.0
    host_flag_poll_us: float = 0.4         #: OpenMP-style spin on host flag

    # --- GPU-initiated communication (NVSHMEM-like) ---------------------
    nvshmem_put_latency_us: float = 1.1    #: one-sided put initiation
    nvshmem_signal_us: float = 0.9         #: atomic signal op at target
    nvshmem_wait_poll_us: float = 0.4      #: signal_wait_until poll granularity
    nvshmem_iput_element_us: float = 0.002  #: per-element cost of strided iput
    nvshmem_p_us: float = 0.5              #: single-element put (thread-issued)
    nvshmem_quiet_us: float = 1.4          #: memory-ordering fence to completion
    nvshmem_fence_us: float = 0.5          #: per-route ordering fence (non-blocking)
    nvshmem_host_barrier_us: float = 9.0   #: nvshmem_barrier_all from host
    #: CPU proxy-thread forward for inter-node (cross-NVSwitch-domain)
    #: puts: the SM rings a doorbell and the proxy posts the NIC work
    #: request ("Demystifying NVSHMEM" — remote transports are
    #: proxy-initiated, unlike the direct NVLink path)
    nvshmem_proxy_us: float = 2.0
    #: fraction of link bandwidth a single issuing thread achieves
    #: (cooperative nvshmemx_*_block calls reach 1.0 — paper §5.3.2)
    put_thread_bw_fraction: float = 0.15
    put_warp_bw_fraction: float = 0.5      #: warp-scope cooperative calls

    # --- device-side execution ------------------------------------------
    grid_sync_us: float = 2.8              #: cooperative-groups grid.sync()
    block_sync_us: float = 0.15            #: __syncthreads-scale
    device_loop_overhead_us: float = 0.12  #: persistent-kernel per-iteration bookkeeping

    # --- compute (memory-bound roofline) ---------------------------------
    stencil_bytes_per_element: float = 16.0  #: fp64 read+write with cached neighbors
    compute_efficiency: float = 0.82       #: achieved fraction of peak HBM bandwidth
    #: throughput penalty factor for software tiling in co-resident
    #: persistent kernels once the domain heavily oversubscribes the
    #: device (paper §4.1.4 / §6.1.2: "subpar tiling in the
    #: computational kernels" on the largest domains).  The penalty
    #: ramps in with the elements-per-resident-thread ratio: mild
    #: oversubscription tiles fine, deep oversubscription does not.
    tiling_penalty: float = 0.22
    tiling_free_ratio: float = 8.0   #: elements/thread with no penalty yet
    tiling_full_ratio: float = 32.0  #: elements/thread with the full penalty
    #: fraction of per-iteration global traffic PERKS removes at full
    #: residency: register/shared-memory caching plus temporal blocking
    #: over the resident wave (Zhang et al. 2022 report ~1.2x on 2D5pt
    #: A100 at large domains, i.e. ~20% effective traffic reduction)
    perks_cache_benefit: float = 0.20

    # --- derived helpers --------------------------------------------------

    def transfer_us(self, nbytes: float, gbps: float, latency_us: float = 0.0) -> float:
        """Time to move ``nbytes`` over a ``gbps`` link."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return 0.0
        return latency_us + nbytes / _bytes_per_us(gbps)

    def mpi_allreduce_us(self, num_ranks: int) -> float:
        """Host ``MPI_Allreduce`` of a scalar: reduce-then-broadcast
        tree, two message latencies per level."""
        if num_ranks <= 1:
            return 0.0
        levels = math.ceil(math.log2(num_ranks))
        return 2.0 * levels * self.mpi_message_latency_us

    def mpi_barrier_us(self, num_ranks: int) -> float:
        """Host rendezvous cost per time step.

        Linear in the rank count: every additional host thread adds a
        driver-contention/straggler tail to the per-iteration barrier
        (see the attribute docs for the calibration rationale).
        """
        if num_ranks <= 1:
            return 0.0
        return self.mpi_barrier_base_us * (num_ranks - 1)

    def tiling_factor(self, elements: int, resident_threads: int) -> float:
        """Software-tiling slowdown for a co-resident persistent kernel.

        Returns 1.0 up to ``tiling_free_ratio`` elements per resident
        thread, ramping linearly to ``1 + tiling_penalty`` at
        ``tiling_full_ratio`` and beyond (paper §4.1.4: the penalty is
        only visible on the largest domains).
        """
        if resident_threads <= 0:
            raise ValueError("resident_threads must be positive")
        if elements < 0:
            raise ValueError("negative element count")
        if isinstance(elements, Stacked) or isinstance(resident_threads, Stacked):
            # Batched sweep: members may sit on different sides of the
            # ramp, so evaluate the exact scalar expression per member.
            B = len((elements if isinstance(elements, Stacked)
                     else resident_threads).v)
            from repro.sim.stacked import members, stacked_val

            return stacked_val([
                self.tiling_factor(e, r)
                for e, r in zip(members(elements, B), members(resident_threads, B))
            ])
        ratio = elements / resident_threads
        if ratio <= self.tiling_free_ratio:
            return 1.0
        span = self.tiling_full_ratio - self.tiling_free_ratio
        ramp = min(1.0, (ratio - self.tiling_free_ratio) / span)
        return 1.0 + self.tiling_penalty * ramp

    def compute_time_us(
        self,
        elements: int,
        hbm_gbps: float,
        *,
        fraction_of_device: float = 1.0,
        tiling_factor: float = 1.0,
        perks_residency: float = 0.0,
    ) -> float:
        """Per-iteration stencil compute time for ``elements`` grid points.

        ``fraction_of_device``
            share of the device's thread blocks working on this region
            (TB specialization splits the device between inner and
            boundary work).
        ``tiling_factor``
            multiplicative slowdown from software tiling in co-resident
            persistent kernels (see :meth:`tiling_factor`); 1.0 for
            discrete kernels, which oversubscribe freely.
        ``perks_residency``
            fraction (0..1) of per-iteration traffic PERKS-style
            caching/temporal blocking removes (scaled by
            ``perks_cache_benefit``).
        """
        if elements < 0:
            raise ValueError("negative element count")
        if not 0.0 < fraction_of_device <= 1.0:
            raise ValueError("fraction_of_device must be in (0, 1]")
        if not 0.0 <= perks_residency <= 1.0:
            raise ValueError("perks_residency must be in [0, 1]")
        if tiling_factor < 1.0:
            raise ValueError("tiling_factor must be >= 1")
        if elements == 0:
            return 0.0
        traffic = elements * self.stencil_bytes_per_element
        traffic *= 1.0 - self.perks_cache_benefit * perks_residency
        effective_gbps = hbm_gbps * self.compute_efficiency * fraction_of_device
        return traffic / _bytes_per_us(effective_gbps) * tiling_factor

    def with_(self, **changes) -> "CostModel":
        """Modified copy — used by ablation benchmarks.

        Knob names are validated here: a typo would otherwise fall
        through to ``dataclasses.replace`` and raise an opaque
        ``TypeError`` that never names the valid fields.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(changes) - valid)
        if unknown:
            raise ValueError(
                f"unknown CostModel knob(s): {', '.join(unknown)}; "
                f"valid knobs are: {', '.join(sorted(valid))}"
            )
        return replace(self, **changes)


#: Shared default instance; experiments may override individual knobs.
DEFAULT_COST_MODEL = CostModel()
