"""Device memory: buffers, storage classes, UVA peer access.

Buffers are backed by real NumPy arrays so the simulated kernels
perform the actual Jacobi arithmetic — every communication-protocol
variant is checked for numerical correctness against a single-domain
reference, not just timed.

Storage classes mirror the paper's §5.3.3: ordinary ``GLOBAL`` device
memory versus ``SYMMETRIC`` (NVSHMEM PGAS heap) memory, which is the
only storage remote-memory operations may target.  ``HOST`` exists for
staged baseline copies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["DeviceBuffer", "MemoryManager", "Storage"]


class Storage(enum.Enum):
    """Where an allocation lives (paper §5.3.3 storage types)."""

    HOST = "host"
    GLOBAL = "gpu_global"       #: cudaMalloc-style device memory
    SYMMETRIC = "gpu_nvshmem"   #: nvshmem_malloc symmetric heap


@dataclass(eq=False)
class DeviceBuffer:
    """A typed allocation on one device.

    ``data`` is the backing NumPy array.  Identity (not value) equality
    is intentional: buffers are handles.
    """

    device: int
    name: str
    data: np.ndarray
    storage: Storage = Storage.GLOBAL

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DeviceBuffer {self.name} dev={self.device} {self.shape} "
            f"{self.dtype} {self.storage.value}>"
        )


class PeerAccessError(RuntimeError):
    """Raised on a peer access that was never enabled (UVA discipline)."""


class MemoryManager:
    """Tracks allocations and peer-access permissions for one node.

    Models the constraints the real stack enforces:

    - capacity accounting per device (allocation beyond HBM raises),
    - direct peer load/store requires ``enable_peer_access`` first
      (``cudaDeviceEnablePeerAccess``) unless the buffer is symmetric.
    """

    def __init__(self, num_gpus: int, capacity_bytes: int | None = None) -> None:
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        self.num_gpus = num_gpus
        self.capacity_bytes = capacity_bytes
        self._used = [0] * num_gpus
        self._buffers: list[DeviceBuffer] = []
        self._peer_ok: set[tuple[int, int]] = set()

    # -- allocation ---------------------------------------------------------

    def alloc(
        self,
        device: int,
        name: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        storage: Storage = Storage.GLOBAL,
        fill: float | None = 0.0,
    ) -> DeviceBuffer:
        """Allocate a buffer on ``device``; zero-filled by default."""
        self._check_device(device)
        if fill is None:
            data = np.empty(shape, dtype=dtype)
        else:
            data = np.full(shape, fill, dtype=dtype)
        if self.capacity_bytes is not None:
            if self._used[device] + data.nbytes > self.capacity_bytes:
                raise MemoryError(
                    f"device {device}: allocation of {data.nbytes} bytes exceeds "
                    f"capacity ({self._used[device]}/{self.capacity_bytes} used)"
                )
        buf = DeviceBuffer(device=device, name=name, data=data, storage=storage)
        self._used[device] += data.nbytes
        self._buffers.append(buf)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """Release a buffer (double-free raises)."""
        try:
            self._buffers.remove(buf)
        except ValueError:
            raise RuntimeError(f"double free or foreign buffer: {buf.name}") from None
        self._used[buf.device] -= buf.nbytes

    def used_bytes(self, device: int) -> int:
        self._check_device(device)
        return self._used[device]

    def buffers_on(self, device: int) -> Iterator[DeviceBuffer]:
        self._check_device(device)
        return (b for b in self._buffers if b.device == device)

    # -- peer access (UVA) ----------------------------------------------------

    def enable_peer_access(self, src: int, dst: int) -> None:
        """Allow device ``src`` to directly load/store ``dst`` memory."""
        self._check_device(src)
        self._check_device(dst)
        self._peer_ok.add((src, dst))

    def enable_all_peer_access(self) -> None:
        for a in range(self.num_gpus):
            for b in range(self.num_gpus):
                if a != b:
                    self.enable_peer_access(a, b)

    def check_peer_access(self, accessor: int, buf: DeviceBuffer) -> None:
        """Validate a direct device-side access to ``buf`` by ``accessor``.

        Symmetric-heap buffers are always remotely accessible (that is
        the PGAS contract); global memory needs peer access enabled.
        """
        if accessor == buf.device or buf.storage is Storage.SYMMETRIC:
            return
        if (accessor, buf.device) not in self._peer_ok:
            raise PeerAccessError(
                f"device {accessor} has no peer access to device {buf.device} "
                f"buffer {buf.name!r} (storage={buf.storage.value})"
            )

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_gpus:
            raise ValueError(f"device {device} out of range (num_gpus={self.num_gpus})")
