"""Inter-GPU link topology and transfer-time computation.

On the paper's HGX testbed every GPU pair communicates at full NVLink
bandwidth through NVSwitch ("connected all-to-all through NVLink",
§6).  We model that as a complete graph of :class:`Link` objects plus a
host link per device (PCIe) for staged copies.

Transfers are *modeled*, not byte-simulated: the time for ``n`` bytes
over a link is ``latency + n / bandwidth``.  Contention is modeled by
an optional per-link concurrency divisor used when several transfers
share a link in the same iteration window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import NodeSpec

__all__ = ["Link", "NodeTopology"]


@dataclass(frozen=True)
class Link:
    """A unidirectional channel: ``bandwidth_gbps`` GB/s, ``latency_us`` µs."""

    bandwidth_gbps: float
    latency_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("latency must be non-negative")

    def transfer_us(self, nbytes: float, *, sharers: int = 1) -> float:
        """Time to move ``nbytes``; ``sharers`` concurrent transfers
        split the bandwidth evenly (NVSwitch is non-blocking across
        distinct pairs, so sharers>1 only applies to the same pair)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if sharers < 1:
            raise ValueError("sharers must be >= 1")
        if nbytes == 0:
            return 0.0
        effective = self.bandwidth_gbps / sharers
        return self.latency_us + nbytes / (effective * 1000.0)


HOST = -1  #: pseudo device id for the host in topology queries


class NodeTopology:
    """Complete-graph GPU topology with a host link per device."""

    def __init__(self, node: NodeSpec) -> None:
        self.node = node
        self.num_gpus = node.num_gpus
        self._peer = Link(node.nvlink_bandwidth_gbps, node.nvlink_latency_us)
        self._host = Link(node.host_link_bandwidth_gbps, node.host_link_latency_us)
        #: loopback: same-device copies run at HBM bandwidth, negligible latency
        self._local = Link(node.gpu.hbm_bandwidth_gbps, 0.2)
        #: optional MetricsRegistry for per-link traffic accounting
        #: (installed by the owning context; never affects timing)
        self.metrics = None
        #: optional FaultInjector (installed by the owning context);
        #: None = the fault plane is fully inert
        self.faults = None
        #: per-link traffic accumulated as plain slots and folded into
        #: the registry by :meth:`flush_metrics` — registry lookups are
        #: too slow for the per-transfer path
        self._pending_traffic: dict = {}

    def link(self, src: int, dst: int) -> Link:
        """The link used for a ``src -> dst`` transfer.

        ``HOST`` (-1) designates the host on either end.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return self._local
        if src == HOST or dst == HOST:
            base = self._host
        else:
            base = self._peer
        if self.faults is not None:
            return self.faults.effective_link(src, dst, base)
        return base

    def peers(self, device: int) -> list[int]:
        """All GPUs reachable from ``device`` (everyone, on HGX)."""
        self._check(device)
        if device == HOST:
            return list(range(self.num_gpus))
        return [d for d in range(self.num_gpus) if d != device]

    def transfer_us(self, src: int, dst: int, nbytes: float, *, sharers: int = 1) -> float:
        """Modeled duration of a ``src -> dst`` copy of ``nbytes``.

        Under an active fault plan the route may pick up latency jitter,
        and a link marked permanently down reroutes through the host
        (``src -> host -> dst`` staged copy) instead of hanging.
        """
        if self.metrics is not None:
            self.record_transfer(src, dst, nbytes, sharers=sharers)
        faults = self.faults
        if faults is not None:
            if faults.link_down(src, dst):
                return faults.staged_transfer_us(self, src, dst, nbytes, sharers=sharers)
            return (self.link(src, dst).transfer_us(nbytes, sharers=sharers)
                    + faults.transfer_jitter_us(src, dst))
        return self.link(src, dst).transfer_us(nbytes, sharers=sharers)

    def record_transfer(self, src: int, dst: int, nbytes: float, *,
                        sharers: int = 1) -> None:
        """Account one transfer on the ``src -> dst`` link (bytes,
        transfer count, contention sharers).  Called by every modeled
        copy and by NVSHMEM puts that compute their own wire time."""
        if self.metrics is None:
            return
        acc = self._pending_traffic.get((src, dst))
        if acc is None:
            acc = self._pending_traffic[(src, dst)] = [0.0, 0, 0]
        acc[0] += nbytes
        acc[1] += 1
        acc[2] += sharers

    def flush_metrics(self) -> None:
        """Fold accumulated link traffic into the registry (called by
        the owning context after each simulation run)."""
        m = self.metrics
        if m is None or not self._pending_traffic:
            return
        for (src, dst), (nbytes, n, sharers) in sorted(self._pending_traffic.items()):
            src_l = "host" if src == HOST else str(src)
            dst_l = "host" if dst == HOST else str(dst)
            m.counter("hw.link.bytes", src=src_l, dst=dst_l).inc(nbytes)
            m.counter("hw.link.transfers", src=src_l, dst=dst_l).inc(n)
            m.counter("hw.link.sharers_total", src=src_l, dst=dst_l).inc(sharers)
        self._pending_traffic.clear()

    def _check(self, device: int) -> None:
        if device != HOST and not 0 <= device < self.num_gpus:
            raise ValueError(f"device {device} out of range (num_gpus={self.num_gpus})")
