"""Inter-GPU link topology and transfer-time computation.

On the paper's HGX testbed every GPU pair communicates at full NVLink
bandwidth through NVSwitch ("connected all-to-all through NVLink",
§6).  We model that as a complete graph of :class:`Link` objects plus a
host link per device (PCIe) for staged copies.

Above one NVSwitch domain the all-to-all assumption breaks:
:class:`ClusterTopology` models equal domains joined by per-domain
NIC/InfiniBand *rails*.  Intra-domain pairs keep the NVLink link;
cross-domain transfers ride the **source** domain's egress rail, which
is a stateful :class:`RailLink` so concurrent transfers contend for
bandwidth without every caller having to remember ``sharers``.

Transfers are *modeled*, not byte-simulated: the time for ``n`` bytes
over a link is ``latency + n / bandwidth``.  Contention is modeled by
an optional per-link concurrency divisor used when several transfers
share a link in the same iteration window (and automatically, by
in-flight occupancy, on rails).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import NodeSpec

__all__ = ["ClusterTopology", "Link", "NodeTopology", "RailLink", "build_topology"]


@dataclass(frozen=True)
class Link:
    """A unidirectional channel: ``bandwidth_gbps`` GB/s, ``latency_us`` µs."""

    bandwidth_gbps: float
    latency_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("latency must be non-negative")

    def transfer_us(self, nbytes: float, *, sharers: int = 1) -> float:
        """Time to move ``nbytes``; ``sharers`` concurrent transfers
        split the bandwidth evenly (NVSwitch is non-blocking across
        distinct pairs, so sharers>1 only applies to the same pair)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if sharers < 1:
            raise ValueError("sharers must be >= 1")
        if nbytes == 0:
            return 0.0
        effective = self.bandwidth_gbps / sharers
        return self.latency_us + nbytes / (effective * 1000.0)


HOST = -1  #: pseudo device id for the host in topology queries


class RailLink:
    """A stateful inter-node rail that tracks in-flight occupancy.

    The frozen :class:`Link` splits bandwidth only when the caller
    passes ``sharers`` — forget it and two concurrent transfers are
    each modeled at full bandwidth.  Rails carry many unrelated flows
    (every cross-domain route of a domain funnels through one NIC), so
    relying on a caller contract would be a standing footgun.  Instead
    the rail remembers when each accepted transfer finishes and charges
    every new transfer ``1 + in-flight`` effective sharers at issue
    time.  Occupancy depends only on issue order, which the simulator
    makes deterministic, so sharded and flat dispatch price transfers
    identically.
    """

    __slots__ = ("bandwidth_gbps", "latency_us", "_clock", "_busy_until")

    def __init__(self, bandwidth_gbps: float, latency_us: float, clock=None) -> None:
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_us < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth_gbps = bandwidth_gbps
        self.latency_us = latency_us
        #: callable returning the current sim time; None = occupancy off
        self._clock = clock
        self._busy_until: list[float] = []  # end times of in-flight transfers

    def inflight(self) -> int:
        """Transfers currently occupying the rail (after pruning)."""
        clock = self._clock
        if clock is None or not self._busy_until:
            return 0
        now = clock()
        if not isinstance(now, float):
            now = float(now.v[0])  # batched vector clock: pilot member
        self._busy_until = [t for t in self._busy_until if t > now]
        return len(self._busy_until)

    def transfer_us(self, nbytes: float, *, sharers: int = 1) -> float:
        """Pure estimate — prices the transfer against current occupancy
        without occupying the rail (what-if queries, staged-cost math)."""
        return self._price(nbytes, sharers, self.inflight())

    def occupy(self, nbytes: float, *, sharers: int = 1) -> float:
        """Price ``nbytes`` against current occupancy *and* hold the
        rail for the transfer's duration.  This is the accounting entry
        point for real transfers."""
        inflight = self.inflight()
        cost = self._price(nbytes, sharers, inflight)
        clock = self._clock
        if clock is not None and nbytes > 0:
            now = clock()
            if not isinstance(now, float):
                now = float(now.v[0])
            self._busy_until.append(now + cost)
        return cost

    def _price(self, nbytes: float, sharers: int, inflight: int) -> float:
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if sharers < 1:
            raise ValueError("sharers must be >= 1")
        if nbytes == 0:
            return 0.0
        effective = self.bandwidth_gbps / (sharers + inflight)
        return self.latency_us + nbytes / (effective * 1000.0)


class NodeTopology:
    """Complete-graph GPU topology with a host link per device."""

    def __init__(self, node: NodeSpec) -> None:
        self.node = node
        self.num_gpus = node.num_gpus
        self._peer = Link(node.nvlink_bandwidth_gbps, node.nvlink_latency_us)
        self._host = Link(node.host_link_bandwidth_gbps, node.host_link_latency_us)
        #: loopback: same-device copies run at HBM bandwidth, negligible latency
        self._local = Link(node.gpu.hbm_bandwidth_gbps, 0.2)
        #: optional MetricsRegistry for per-link traffic accounting
        #: (installed by the owning context; never affects timing)
        self.metrics = None
        #: optional FaultInjector (installed by the owning context);
        #: None = the fault plane is fully inert
        self.faults = None
        #: per-link traffic accumulated as plain slots and folded into
        #: the registry by :meth:`flush_metrics` — registry lookups are
        #: too slow for the per-transfer path
        self._pending_traffic: dict = {}
        #: simulator reference (installed by the owning context); only
        #: hierarchical topologies need it, for rail-occupancy clocks
        self.sim = None
        self.num_domains = 1

    def domain_of(self, device: int) -> int:
        """NVSwitch domain of ``device`` (always 0 on a flat node)."""
        self._check(device)
        return 0

    def cross_domain(self, src: int, dst: int) -> bool:
        """True iff a ``src -> dst`` transfer leaves its NVSwitch domain."""
        return False

    def link(self, src: int, dst: int) -> Link:
        """The link used for a ``src -> dst`` transfer.

        ``HOST`` (-1) designates the host on either end.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return self._local
        if src == HOST or dst == HOST:
            base = self._host
        else:
            base = self._peer
        if self.faults is not None:
            return self.faults.effective_link(src, dst, base)
        return base

    def peers(self, device: int) -> list[int]:
        """All GPUs reachable from ``device`` (everyone, on HGX)."""
        self._check(device)
        if device == HOST:
            return list(range(self.num_gpus))
        return [d for d in range(self.num_gpus) if d != device]

    def transfer_us(self, src: int, dst: int, nbytes: float, *, sharers: int = 1) -> float:
        """Modeled duration of a ``src -> dst`` copy of ``nbytes``.

        Under an active fault plan the route may pick up latency jitter,
        and a link marked permanently down reroutes through the host
        (``src -> host -> dst`` staged copy) instead of hanging.
        """
        if self.metrics is not None:
            self.record_transfer(src, dst, nbytes, sharers=sharers)
        faults = self.faults
        if faults is not None:
            if faults.link_down(src, dst):
                return faults.staged_transfer_us(self, src, dst, nbytes, sharers=sharers)
            return (self.link(src, dst).transfer_us(nbytes, sharers=sharers)
                    + faults.transfer_jitter_us(src, dst))
        return self.link(src, dst).transfer_us(nbytes, sharers=sharers)

    def staged_route_us(self, src: int, dst: int, nbytes: float, *,
                        sharers: int = 1) -> float:
        """Cost of the host-staged reroute used when the direct link is
        down: bounce through host memory over the endpoints' host
        links.  Hierarchical topologies override this — an inter-node
        reroute must also cross (and charge) the source domain's rail,
        not pretend one shared host link spans the machine."""
        return (self.link(src, HOST).transfer_us(nbytes, sharers=sharers)
                + self.link(HOST, dst).transfer_us(nbytes, sharers=sharers))

    def record_transfer(self, src: int, dst: int, nbytes: float, *,
                        sharers: int = 1) -> None:
        """Account one transfer on the ``src -> dst`` link (bytes,
        transfer count, contention sharers).  Called by every modeled
        copy and by NVSHMEM puts that compute their own wire time."""
        if self.metrics is None:
            return
        acc = self._pending_traffic.get((src, dst))
        if acc is None:
            acc = self._pending_traffic[(src, dst)] = [0.0, 0, 0]
        acc[0] += nbytes
        acc[1] += 1
        acc[2] += sharers

    def flush_metrics(self) -> None:
        """Fold accumulated link traffic into the registry (called by
        the owning context after each simulation run)."""
        m = self.metrics
        if m is None or not self._pending_traffic:
            return
        for (src, dst), (nbytes, n, sharers) in sorted(self._pending_traffic.items()):
            src_l = "host" if src == HOST else str(src)
            dst_l = "host" if dst == HOST else str(dst)
            m.counter("hw.link.bytes", src=src_l, dst=dst_l).inc(nbytes)
            m.counter("hw.link.transfers", src=src_l, dst=dst_l).inc(n)
            m.counter("hw.link.sharers_total", src=src_l, dst=dst_l).inc(sharers)
        self._pending_traffic.clear()

    def _check(self, device: int) -> None:
        if device != HOST and not 0 <= device < self.num_gpus:
            raise ValueError(f"device {device} out of range (num_gpus={self.num_gpus})")


class ClusterTopology(NodeTopology):
    """Hierarchical topology: NVSwitch domains joined by NIC rails.

    Within a domain every pair keeps the all-to-all NVLink link of the
    flat node.  A cross-domain transfer is proxy-initiated: it hops to
    the source domain's NIC, crosses that domain's egress
    :class:`RailLink` (stateful — concurrent flows contend), and lands
    through the destination domain's switch.  ``link()`` for a
    cross-domain pair returns a frozen composite (rail bandwidth,
    NVLink-hop + rail latency) for pure queries; real transfers go
    through :meth:`transfer_us` / :meth:`rail_transfer_us` so occupancy
    is charged.
    """

    def __init__(self, node: NodeSpec) -> None:
        super().__init__(node)
        self.domain_gpus = node.domain_gpus
        self.num_domains = node.num_domains
        #: effective direct link for cross-domain pure queries
        self._inter = Link(node.rail_bandwidth_gbps,
                           node.nvlink_latency_us + node.rail_latency_us)
        #: one egress rail per domain, sharing the topology's sim clock
        self._rails = [RailLink(node.rail_bandwidth_gbps, node.rail_latency_us,
                                self._now)
                       for _ in range(self.num_domains)]
        #: (src_domain, dst_domain) -> [bytes, transfers]
        self._pending_rail: dict = {}

    def _now(self) -> float:
        sim = self.sim
        return sim.now if sim is not None else 0.0

    def rail(self, domain: int) -> RailLink:
        """Domain ``domain``'s egress rail."""
        if not 0 <= domain < self.num_domains:
            raise ValueError(f"domain {domain} out of range "
                             f"(num_domains={self.num_domains})")
        return self._rails[domain]

    def domain_of(self, device: int) -> int:
        self._check(device)
        return device // self.domain_gpus

    def cross_domain(self, src: int, dst: int) -> bool:
        if src == dst or src == HOST or dst == HOST:
            return False
        dg = self.domain_gpus
        return src // dg != dst // dg

    def link(self, src: int, dst: int) -> Link:
        if self.cross_domain(src, dst):
            self._check(src)
            self._check(dst)
            if self.faults is not None:
                return self.faults.effective_link(src, dst, self._inter)
            return self._inter
        return super().link(src, dst)

    def rail_transfer_us(self, src: int, dst: int, nbytes: float, *,
                         sharers: int = 1, occupy: bool = True) -> float:
        """Wire time of the rail leg of a ``src -> dst`` cross-domain
        transfer: an NVLink hop to the source NIC (latency only — the
        NVSwitch side never bottlenecks a 25 GB/s rail) plus the
        **source** domain's egress rail, priced against its in-flight
        occupancy.  ``occupy=False`` gives a pure estimate."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        sd = self.domain_of(src)
        dd = self.domain_of(dst)
        if sd == dd:
            raise ValueError(f"devices {src} and {dst} share domain {sd}")
        if self.metrics is not None and occupy:
            acc = self._pending_rail.get((sd, dd))
            if acc is None:
                acc = self._pending_rail[(sd, dd)] = [0.0, 0]
            acc[0] += nbytes
            acc[1] += 1
        if nbytes == 0:
            return 0.0
        rail = self._rails[sd]
        cost = (rail.occupy(nbytes, sharers=sharers) if occupy
                else rail.transfer_us(nbytes, sharers=sharers))
        return self.node.nvlink_latency_us + cost

    def transfer_us(self, src: int, dst: int, nbytes: float, *, sharers: int = 1) -> float:
        if not self.cross_domain(src, dst):
            return super().transfer_us(src, dst, nbytes, sharers=sharers)
        if self.metrics is not None:
            self.record_transfer(src, dst, nbytes, sharers=sharers)
        faults = self.faults
        if faults is not None:
            if faults.link_down(src, dst):
                return faults.staged_transfer_us(self, src, dst, nbytes,
                                                 sharers=sharers)
            return (self.rail_transfer_us(src, dst, nbytes, sharers=sharers)
                    + faults.transfer_jitter_us(src, dst))
        return self.rail_transfer_us(src, dst, nbytes, sharers=sharers)

    def staged_route_us(self, src: int, dst: int, nbytes: float, *,
                        sharers: int = 1) -> float:
        """Host-staged reroute.  Cross-domain, the staged copy still has
        to leave the node: PCIe up on the source node, the source
        domain's rail, PCIe down on the destination node."""
        if not self.cross_domain(src, dst):
            return super().staged_route_us(src, dst, nbytes, sharers=sharers)
        return (self.link(src, HOST).transfer_us(nbytes, sharers=sharers)
                + self.rail_transfer_us(src, dst, nbytes, sharers=sharers)
                + self.link(HOST, dst).transfer_us(nbytes, sharers=sharers))

    def flush_metrics(self) -> None:
        super().flush_metrics()
        m = self.metrics
        if m is None or not self._pending_rail:
            return
        for (sd, dd), (nbytes, n) in sorted(self._pending_rail.items()):
            m.counter("hw.rail.bytes", src_node=str(sd), dst_node=str(dd)).inc(nbytes)
            m.counter("hw.rail.transfers", src_node=str(sd), dst_node=str(dd)).inc(n)
        self._pending_rail.clear()


def build_topology(node: NodeSpec) -> NodeTopology:
    """Topology matching ``node``: flat complete-graph within one
    NVSwitch domain, :class:`ClusterTopology` above it."""
    return ClusterTopology(node) if node.is_hierarchical else NodeTopology(node)
