"""GPU and node capability descriptions.

The co-residency arithmetic here implements the constraint the paper's
§4.1.4 calls out: cooperative (persistent) kernels may launch *at most*
as many thread blocks as can be simultaneously resident on the device,
which forbids the oversubscription discrete kernels rely on and forces
software tiling for large domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["A100_SXM4_80GB", "GPUSpec", "HGX_A100_8GPU", "NodeSpec"]


@dataclass(frozen=True)
class GPUSpec:
    """Capabilities of one GPU.

    Bandwidth figures are in GB/s; memory sizes in bytes.
    """

    name: str
    sm_count: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    hbm_bandwidth_gbps: float
    hbm_capacity_bytes: int
    shared_mem_per_sm_bytes: int
    registers_per_sm: int

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ValueError("sm_count must be positive")
        if self.max_threads_per_block <= 0:
            raise ValueError("max_threads_per_block must be positive")
        if self.max_threads_per_sm < self.max_threads_per_block:
            raise ValueError("an SM must fit at least one full block")

    def max_coresident_blocks(self, threads_per_block: int) -> int:
        """Blocks that can be *simultaneously* resident device-wide.

        This is the hard launch bound for cooperative-groups kernels
        (persistent kernels in the CPU-Free model).  Per SM, residency
        is limited both by the thread budget and the block-slot budget.
        """
        if not 0 < threads_per_block <= self.max_threads_per_block:
            raise ValueError(
                f"threads_per_block must be in (0, {self.max_threads_per_block}], "
                f"got {threads_per_block}"
            )
        per_sm = min(self.max_threads_per_sm // threads_per_block, self.max_blocks_per_sm)
        return self.sm_count * per_sm

    def saturation_elements(self, threads_per_block: int = 1024) -> int:
        """Number of grid elements that exactly saturates the device
        with one element per thread — the boundary the paper uses to
        define *small* vs *medium* vs *large* domains (§6.1.1)."""
        return self.max_coresident_blocks(threads_per_block) * threads_per_block

    def with_(self, **changes) -> "GPUSpec":
        """Return a modified copy (convenience for ablations)."""
        return replace(self, **changes)


#: NVIDIA A100-SXM4-80GB, the paper's device (108 SMs, 2039 GB/s HBM2e).
A100_SXM4_80GB = GPUSpec(
    name="NVIDIA A100-SXM4-80GB",
    sm_count=108,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    hbm_bandwidth_gbps=2039.0,
    hbm_capacity_bytes=80 * 1024**3,
    shared_mem_per_sm_bytes=164 * 1024,
    registers_per_sm=65536,
)


@dataclass(frozen=True)
class NodeSpec:
    """A multi-GPU system: N identical GPUs plus interconnect parameters.

    ``nvlink_bandwidth_gbps`` is the per-direction bandwidth available
    between any pair of GPUs through NVSwitch (all-to-all on HGX).

    All-to-all NVLink only exists *within* one NVSwitch domain.  A spec
    whose ``num_gpus`` exceeds ``nvswitch_domain_gpus`` describes a
    hierarchical machine: equal NVSwitch domains joined by per-domain
    NIC/InfiniBand *rails* (``rail_bandwidth_gbps``/``rail_latency_us``)
    that carry proxy-initiated inter-node traffic.  ``None`` (the
    default) means the whole machine is one domain — the paper's flat
    HGX node.
    """

    gpu: GPUSpec
    num_gpus: int
    nvlink_bandwidth_gbps: float
    nvlink_latency_us: float
    host_link_bandwidth_gbps: float = 25.0  # PCIe Gen4 x16 effective
    host_link_latency_us: float = 4.0
    #: GPUs per NVSwitch domain (None = all of num_gpus in one domain)
    nvswitch_domain_gpus: int | None = None
    #: inter-node NIC/IB rail, one egress rail per domain
    rail_bandwidth_gbps: float = 25.0  # HDR200 effective per rail
    rail_latency_us: float = 5.0

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        domain = self.nvswitch_domain_gpus
        if domain is not None:
            if domain <= 0:
                raise ValueError("nvswitch_domain_gpus must be positive")
            if self.num_gpus > domain and self.num_gpus % domain != 0:
                raise ValueError(
                    f"{self.num_gpus} GPUs cannot be built from whole NVSwitch "
                    f"domains of {domain} (count must divide evenly)"
                )
        if self.rail_bandwidth_gbps <= 0:
            raise ValueError("rail_bandwidth_gbps must be positive")
        if self.rail_latency_us < 0:
            raise ValueError("rail_latency_us must be non-negative")

    # -- domain arithmetic ---------------------------------------------------

    @property
    def domain_gpus(self) -> int:
        """GPUs per NVSwitch domain (= ``num_gpus`` for a flat node)."""
        domain = self.nvswitch_domain_gpus
        return min(domain, self.num_gpus) if domain is not None else self.num_gpus

    @property
    def num_domains(self) -> int:
        return -(-self.num_gpus // self.domain_gpus)

    @property
    def is_hierarchical(self) -> bool:
        return self.num_domains > 1

    def domain_of(self, device: int) -> int:
        """NVSwitch domain containing ``device``."""
        if not 0 <= device < self.num_gpus:
            raise ValueError(f"device {device} out of range (num_gpus={self.num_gpus})")
        return device // self.domain_gpus

    def scaled_to(self, num_gpus: int) -> "NodeSpec":
        """Same machine with a different GPU count (scaling sweeps).

        Within one NVSwitch domain this is the flat all-to-all node it
        always was.  *Above* the domain size the old behavior — silently
        granting full all-to-all NVLink at arbitrary counts — was
        physically wrong; the scaled spec is now hierarchical (whole
        NVSwitch domains joined by rails), or a :class:`ValueError`
        explains why it cannot be built.
        """
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        domain = self.nvswitch_domain_gpus or self.num_gpus
        if num_gpus <= domain:
            return replace(self, num_gpus=num_gpus)
        if num_gpus % domain != 0:
            raise ValueError(
                f"cannot scale to {num_gpus} GPUs: counts above the NVSwitch "
                f"domain size must be a whole number of {domain}-GPU domains"
            )
        return replace(self, num_gpus=num_gpus, nvswitch_domain_gpus=domain)


#: The paper's testbed: 8×A100 with third-gen NVLink through NVSwitch.
HGX_A100_8GPU = NodeSpec(
    gpu=A100_SXM4_80GB,
    num_gpus=8,
    nvlink_bandwidth_gbps=300.0,  # per direction per pair
    nvlink_latency_us=1.3,
)
