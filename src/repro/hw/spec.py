"""GPU and node capability descriptions.

The co-residency arithmetic here implements the constraint the paper's
§4.1.4 calls out: cooperative (persistent) kernels may launch *at most*
as many thread blocks as can be simultaneously resident on the device,
which forbids the oversubscription discrete kernels rely on and forces
software tiling for large domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["A100_SXM4_80GB", "GPUSpec", "HGX_A100_8GPU", "NodeSpec"]


@dataclass(frozen=True)
class GPUSpec:
    """Capabilities of one GPU.

    Bandwidth figures are in GB/s; memory sizes in bytes.
    """

    name: str
    sm_count: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    hbm_bandwidth_gbps: float
    hbm_capacity_bytes: int
    shared_mem_per_sm_bytes: int
    registers_per_sm: int

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ValueError("sm_count must be positive")
        if self.max_threads_per_block <= 0:
            raise ValueError("max_threads_per_block must be positive")
        if self.max_threads_per_sm < self.max_threads_per_block:
            raise ValueError("an SM must fit at least one full block")

    def max_coresident_blocks(self, threads_per_block: int) -> int:
        """Blocks that can be *simultaneously* resident device-wide.

        This is the hard launch bound for cooperative-groups kernels
        (persistent kernels in the CPU-Free model).  Per SM, residency
        is limited both by the thread budget and the block-slot budget.
        """
        if not 0 < threads_per_block <= self.max_threads_per_block:
            raise ValueError(
                f"threads_per_block must be in (0, {self.max_threads_per_block}], "
                f"got {threads_per_block}"
            )
        per_sm = min(self.max_threads_per_sm // threads_per_block, self.max_blocks_per_sm)
        return self.sm_count * per_sm

    def saturation_elements(self, threads_per_block: int = 1024) -> int:
        """Number of grid elements that exactly saturates the device
        with one element per thread — the boundary the paper uses to
        define *small* vs *medium* vs *large* domains (§6.1.1)."""
        return self.max_coresident_blocks(threads_per_block) * threads_per_block

    def with_(self, **changes) -> "GPUSpec":
        """Return a modified copy (convenience for ablations)."""
        return replace(self, **changes)


#: NVIDIA A100-SXM4-80GB, the paper's device (108 SMs, 2039 GB/s HBM2e).
A100_SXM4_80GB = GPUSpec(
    name="NVIDIA A100-SXM4-80GB",
    sm_count=108,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    hbm_bandwidth_gbps=2039.0,
    hbm_capacity_bytes=80 * 1024**3,
    shared_mem_per_sm_bytes=164 * 1024,
    registers_per_sm=65536,
)


@dataclass(frozen=True)
class NodeSpec:
    """A multi-GPU node: N identical GPUs plus interconnect parameters.

    ``nvlink_bandwidth_gbps`` is the per-direction bandwidth available
    between any pair of GPUs through NVSwitch (all-to-all on HGX).
    """

    gpu: GPUSpec
    num_gpus: int
    nvlink_bandwidth_gbps: float
    nvlink_latency_us: float
    host_link_bandwidth_gbps: float = 25.0  # PCIe Gen4 x16 effective
    host_link_latency_us: float = 4.0

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")

    def scaled_to(self, num_gpus: int) -> "NodeSpec":
        """Same node with a different GPU count (scaling sweeps)."""
        return replace(self, num_gpus=num_gpus)


#: The paper's testbed: 8×A100 with third-gen NVLink through NVSwitch.
HGX_A100_8GPU = NodeSpec(
    gpu=A100_SXM4_80GB,
    num_gpus=8,
    nvlink_bandwidth_gbps=300.0,  # per direction per pair
    nvlink_latency_us=1.3,
)
