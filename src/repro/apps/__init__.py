"""Additional iterative applications on the CPU-Free model.

The paper's proof of concept is the Jacobi stencil; PERKS (Zhang et
al. 2022), whose kernels the paper integrates, additionally evaluates
**Conjugate Gradient** — an iterative solver whose per-iteration
*global reductions* stress exactly the host-latency path the CPU-Free
model removes.  :mod:`repro.apps.cg` implements multi-GPU CG in both
execution models as the natural extension workload.
"""

from repro.apps.cg import CGConfig, CGResult, reference_cg, run_cg

__all__ = ["CGConfig", "CGResult", "reference_cg", "run_cg"]
