"""Multi-GPU Conjugate Gradient, CPU-controlled vs CPU-Free.

Solves the 2D negative-Laplacian system ``A u = b`` (5-point operator,
homogeneous Dirichlet boundary) with unpreconditioned CG over a slab
decomposition.  Each iteration needs

- one halo exchange of the search direction ``p`` (like the stencil),
- **two global scalar reductions** (``p·q`` and ``r·r``),

which makes CG the latency-bound extreme of the paper's argument: the
CPU-controlled version pays kernel launches, stream syncs *and* two
``MPI_Allreduce`` latencies per iteration, while the CPU-Free version
runs one persistent kernel per GPU and performs the reductions with
GPU-initiated ``putmem_signal`` exchanges of partial sums.

Reduction determinism: partial sums are always combined in rank order
(both on device and in ``MPI_Allreduce``), so the distributed solvers
are *bit-exact* against :func:`reference_cg`, which uses the same
chunk-ordered dot products.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.core import TBGroup, launch_persistent
from repro.hw import DEFAULT_COST_MODEL, HGX_A100_8GPU, CostModel, NodeSpec
from repro.nvshmem import NVSHMEMRuntime, SignalOp, WaitCond
from repro.runtime import Communicator, MultiGPUContext
from repro.runtime.kernel import KernelSpec
from repro.sim import Tracer
from repro.stencil.grid import SlabDecomposition, scatter_slabs

__all__ = ["CGConfig", "CGResult", "reference_cg", "run_cg"]


def laplacian_apply(p: np.ndarray, out: np.ndarray) -> None:
    """Matrix-free 5-point negative Laplacian on the interior.

    ``p`` carries one halo layer on axis 0; axis-1 boundary columns are
    Dirichlet (zero contribution outside).
    """
    out[1:-1, 1:-1] = (
        4.0 * p[1:-1, 1:-1]
        - p[:-2, 1:-1]
        - p[2:, 1:-1]
        - p[1:-1, :-2]
        - p[1:-1, 2:]
    )


@dataclass(frozen=True)
class CGConfig:
    """One CG experiment (fixed iteration count, no early exit)."""

    global_shape: tuple[int, int]
    num_gpus: int
    iterations: int
    node: NodeSpec = HGX_A100_8GPU
    cost: CostModel = DEFAULT_COST_MODEL
    with_data: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if len(self.global_shape) != 2:
            raise ValueError("CG operator is 2D")
        if self.num_gpus > self.node.num_gpus:
            object.__setattr__(self, "node", self.node.scaled_to(self.num_gpus))


@dataclass
class CGResult:
    variant: str
    config: CGConfig
    total_time_us: float
    comm_time_us: float
    sync_time_us: float
    api_time_us: float
    tracer: Tracer
    solution: np.ndarray | None = None
    final_residual_norm2: float | None = None

    @property
    def per_iteration_us(self) -> float:
        return self.total_time_us / self.config.iterations

    def speedup_over(self, baseline: "CGResult") -> float:
        return (baseline.total_time_us - self.total_time_us) / baseline.total_time_us * 100.0


def default_rhs(shape: tuple[int, int], seed: int) -> np.ndarray:
    """Random right-hand side, zero on the Dirichlet ring."""
    rng = np.random.default_rng(seed)
    b = rng.random(shape)
    b[0] = b[-1] = 0.0
    b[:, 0] = b[:, -1] = 0.0
    return b


def _chunk_dot(a: np.ndarray, b: np.ndarray, decomp: SlabDecomposition) -> float:
    """Dot product summed chunk-by-chunk in rank order (the oracle for
    the distributed reductions)."""
    total = 0.0
    for lo, hi in decomp.ranges:
        total += float(np.dot(a[lo:hi].ravel(), b[lo:hi].ravel()))
    return total


def reference_cg(b: np.ndarray, iterations: int, num_chunks: int = 1) -> np.ndarray:
    """Single-array CG with chunk-ordered reductions.

    ``num_chunks`` must equal the distributed run's rank count for
    bit-exact comparison.
    """
    decomp = SlabDecomposition(b.shape, num_chunks)
    x = np.zeros_like(b)
    r = np.array(b)
    r[0] = r[-1] = 0.0
    p = np.array(r)
    q = np.zeros_like(b)
    rs = _chunk_dot(r, r, decomp)
    for _ in range(iterations):
        laplacian_apply(p, q)
        pq = _chunk_dot(p, q, decomp)
        alpha = rs / pq
        x[1:-1, 1:-1] += alpha * p[1:-1, 1:-1]
        r[1:-1, 1:-1] -= alpha * q[1:-1, 1:-1]
        rs_new = _chunk_dot(r, r, decomp)
        beta = rs_new / rs
        p[1:-1, 1:-1] = r[1:-1, 1:-1] + beta * p[1:-1, 1:-1]
        rs = rs_new
    return x


class _CGBase:
    """Shared setup: decomposition, per-rank vectors, metrics."""

    name: ClassVar[str] = ""

    def __init__(self, config: CGConfig) -> None:
        self.config = config
        self.decomp = SlabDecomposition(config.global_shape, config.num_gpus)
        self.tracer = Tracer()
        self.ctx = MultiGPUContext(
            config.node.scaled_to(config.num_gpus), config.cost, self.tracer
        )
        self.halo_nbytes = self.decomp.halo_elements * 8
        #: per-rank dicts of local vectors (p has halos; others interior-sized)
        self.vecs: list[dict[str, np.ndarray]] | None = None
        #: globally reduced scalars, one slot per rank (rank-local copies)
        self.rs: list[float] = [0.0] * config.num_gpus
        self.final_rs: list[float] = [0.0] * config.num_gpus

    # -- local math (no-ops in timing-only mode) -------------------------------

    def setup_vectors(self, p_storage_alloc=None) -> None:
        if not self.config.with_data:
            return
        b_global = default_rhs(self.config.global_shape, self.config.seed)
        slabs = scatter_slabs(b_global, self.decomp)
        self.vecs = []
        for rank in range(self.config.num_gpus):
            b = slabs[rank]
            b[0] = 0.0 if rank == 0 else b[0]
            r = np.array(b)
            r[0] = r[-1] = 0.0  # halo rows carry no residual
            vec = {
                "b": b,
                "x": np.zeros_like(b),
                "r": r,
                "q": np.zeros_like(b),
            }
            if p_storage_alloc is None:
                vec["p"] = np.array(r)
            else:
                view = p_storage_alloc(rank, b.shape)
                view[...] = r
                vec["p"] = view
            self.vecs.append(vec)

    def local_dot(self, rank: int, a_name: str, b_name: str) -> float:
        """Partial dot over this rank's interior rows."""
        if self.vecs is None:
            return 0.0
        a = self.vecs[rank][a_name][1:-1]
        b = self.vecs[rank][b_name][1:-1]
        return float(np.dot(a.ravel(), b.ravel()))

    def spmv(self, rank: int) -> None:
        if self.vecs is None:
            return
        laplacian_apply(self.vecs[rank]["p"], self.vecs[rank]["q"])

    def update_x_r(self, rank: int, alpha: float) -> None:
        if self.vecs is None:
            return
        v = self.vecs[rank]
        v["x"][1:-1, 1:-1] += alpha * v["p"][1:-1, 1:-1]
        v["r"][1:-1, 1:-1] -= alpha * v["q"][1:-1, 1:-1]

    def update_p(self, rank: int, beta: float) -> None:
        if self.vecs is None:
            return
        v = self.vecs[rank]
        v["p"][1:-1, 1:-1] = v["r"][1:-1, 1:-1] + beta * v["p"][1:-1, 1:-1]

    # -- compute-time charging -----------------------------------------------------

    def interior(self, rank: int) -> int:
        return self.decomp.interior_elements(rank)

    # -- result ------------------------------------------------------------------------

    def gather_solution(self) -> np.ndarray | None:
        if self.vecs is None:
            return None
        out = np.zeros(self.config.global_shape)
        for rank, (lo, hi) in enumerate(self.decomp.ranges):
            out[lo:hi] = self.vecs[rank]["x"][1:-1]
        return out

    def run(self) -> CGResult:
        self.setup()
        for rank in range(self.config.num_gpus):
            self.ctx.sim.spawn(self.host_program(rank), name=f"{self.name}.host{rank}",
                               shard=self.ctx.domain_of(rank))
        total = self.ctx.run()
        return CGResult(
            variant=self.name,
            config=self.config,
            total_time_us=total,
            comm_time_us=self.tracer.total("comm"),
            sync_time_us=self.tracer.total("sync"),
            api_time_us=self.tracer.total("api"),
            tracer=self.tracer,
            solution=self.gather_solution(),
            final_residual_norm2=self.final_rs[0] if self.config.with_data else None,
        )

    # subclass interface
    def setup(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def host_program(self, rank: int):  # pragma: no cover - abstract
        raise NotImplementedError


class BaselineCG(_CGBase):
    """CPU-controlled CG: discrete kernels, host halo copies, and an
    ``MPI_Allreduce`` for every reduction (the PETSc-style default)."""

    name = "cg_baseline"

    def setup(self) -> None:
        self.comm = Communicator(self.ctx)
        self.ctx.memory.enable_all_peer_access()
        self.setup_vectors()
        if self.vecs is not None:
            self.devbufs = [
                self.ctx.alloc(rank, "p", self.vecs[rank]["p"].shape, fill=None)
                for rank in range(self.config.num_gpus)
            ]
            for rank in range(self.config.num_gpus):
                self.devbufs[rank].data[...] = self.vecs[rank]["p"]
                self.vecs[rank]["p"] = self.devbufs[rank].data

    def _exchange_halos(self, rank: int, host, stream) -> Generator[Any, Any, None]:
        for side, nbr in self.decomp.neighbors(rank).items():
            if self.config.with_data:
                src_row = 1 if side == "top" else -2
                dst_row = -1 if side == "top" else 0
                dst_row = dst_row % self.devbufs[nbr].shape[0]
                yield from host.memcpy_async(
                    stream, self.devbufs[nbr], dst_row,
                    self.devbufs[rank], src_row % self.devbufs[rank].shape[0],
                    name=f"halo_{side}",
                )
            else:
                yield from host.memcpy_async_modeled(
                    stream, rank, nbr, self.halo_nbytes, name=f"halo_{side}"
                )

    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")
        elements = self.interior(rank)
        blocks = max(1, elements // 1024)
        cost = self.config.cost

        def kernel(work_elements: float, fn, name: str):
            def body(dev):
                yield from dev.compute(int(work_elements), name=name)
                fn()
            return body

        # initial residual reduction
        partial = self.local_dot(rank, "r", "r")
        rs = yield from self.comm.allreduce(rank, partial)
        self.rs[rank] = rs

        for _ in range(self.config.iterations):
            # ① halo exchange of p + SpMV kernel
            yield from self._exchange_halos(rank, host, stream)
            yield from host.launch(
                stream, KernelSpec("spmv", blocks=blocks),
                kernel(elements, lambda: self.spmv(rank), "spmv"),
            )
            # ② local p.q kernel, sync, allreduce
            box: dict[str, float] = {}
            yield from host.launch(
                stream, KernelSpec("dot_pq", blocks=blocks),
                kernel(elements, lambda: box.__setitem__(
                    "pq", self.local_dot(rank, "p", "q")), "dot_pq"),
            )
            yield from host.stream_sync(stream)
            pq = yield from self.comm.allreduce(rank, box.get("pq", 1.0))
            alpha = self.rs[rank] / pq if pq else 0.0
            # ③ axpy updates + local r.r kernel, sync, allreduce
            yield from host.launch(
                stream, KernelSpec("axpy", blocks=blocks),
                kernel(elements * 3, lambda a=alpha: self.update_x_r(rank, a), "axpy"),
            )
            yield from host.launch(
                stream, KernelSpec("dot_rr", blocks=blocks),
                kernel(elements, lambda: box.__setitem__(
                    "rs", self.local_dot(rank, "r", "r")), "dot_rr"),
            )
            yield from host.stream_sync(stream)
            rs_new = yield from self.comm.allreduce(rank, box.get("rs", 1.0))
            beta = rs_new / self.rs[rank] if self.rs[rank] else 0.0
            # ④ direction update
            yield from host.launch(
                stream, KernelSpec("update_p", blocks=blocks),
                kernel(elements * 1.5, lambda b=beta: self.update_p(rank, b), "update_p"),
            )
            yield from host.stream_sync(stream)
            self.rs[rank] = rs_new
        self.final_rs[rank] = self.rs[rank]


class CPUFreeCG(_CGBase):
    """CPU-Free CG: one persistent kernel per GPU; halos move with
    ``putmem_signal`` and reductions with GPU-initiated partial-sum
    exchanges (signal-counted, rank-ordered summation)."""

    name = "cg_cpufree"

    def setup(self) -> None:
        self.nvshmem = NVSHMEMRuntime(self.ctx)
        P = self.config.num_gpus
        max_rows = max(self.decomp.local_shape(r)[0] for r in range(P))
        shape = (max_rows, self.config.global_shape[1])
        self._p_sym = self.nvshmem.malloc("p", shape, fill=0.0)
        #: double-buffered partial-sum slots: [parity][writer rank]
        self._partials = [
            self.nvshmem.malloc(f"partials{par}", (P,), fill=0.0) for par in (0, 1)
        ]
        self._halo_sig = self.nvshmem.malloc_signals("halo", 2)
        #: reduction arrival counters (ADD-signaled)
        self._red_sig = self.nvshmem.malloc_signals("reduce", 1)
        for pe in range(P):
            self._halo_sig.flag(pe, 0).set(1)
            self._halo_sig.flag(pe, 1).set(1)

        def p_alloc(rank: int, shape_local):
            return self._p_sym.local(rank)[: shape_local[0]]

        self.setup_vectors(p_storage_alloc=p_alloc)

    def _allreduce_device(self, nv, rank: int, round_no: int,
                          value: float) -> Generator[Any, Any, float]:
        """Device-side scalar allreduce: put my partial into every
        peer's slot, signal-count arrivals, sum in rank order."""
        P = self.config.num_gpus
        parity = round_no % 2
        partials = self._partials[parity]
        if self.config.with_data:
            partials.local(rank)[rank] = value
        for peer in range(P):
            if peer == rank:
                continue
            yield from nv.putmem_signal_nbi(
                partials if self.config.with_data else None, rank, value,
                self._red_sig, 0, 1, dest_pe=peer, nbytes=8,
                sig_op=SignalOp.ADD, name=f"reduce_r{round_no}",
            )
        yield from nv.signal_wait_until(
            self._red_sig, 0, WaitCond.GE, round_no * (P - 1),
        )
        if not self.config.with_data:
            return 1.0
        local = partials.local(rank)
        total = 0.0
        for r in range(P):
            total += float(local[r])
        return total

    def host_program(self, rank: int) -> Generator[Any, Any, None]:
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")
        elements = self.interior(rank)
        neighbors = self.decomp.neighbors(rank)
        rows = self.decomp.local_shape(rank)[0]
        cg = self

        def body(dev, grid):
            nv = cg.nvshmem.device(rank, lane=dev.lane)
            round_no = 0

            def reduce(value):
                nonlocal round_no
                round_no += 1
                return cg._allreduce_device(nv, rank, round_no, value)

            rs = yield from reduce(cg.local_dot(rank, "r", "r"))
            for it in range(1, cg.config.iterations + 1):
                # ① halo exchange of p (iteration-parity semaphores)
                for side, nbr in neighbors.items():
                    if side == "top":
                        yield from nv.signal_wait_until(
                            cg._halo_sig, 0, WaitCond.GE, it)
                    else:
                        yield from nv.signal_wait_until(
                            cg._halo_sig, 1, WaitCond.GE, it)
                for side, nbr in neighbors.items():
                    src_row = 1 if side == "top" else rows - 2
                    nbr_rows = cg.decomp.local_shape(nbr)[0]
                    dst_row = nbr_rows - 1 if side == "top" else 0
                    sig_index = 1 if side == "top" else 0
                    values = (cg.vecs[rank]["p"][src_row]
                              if cg.config.with_data else 0.0)
                    yield from nv.putmem_signal_nbi(
                        cg._p_sym if cg.config.with_data else None, dst_row,
                        values, cg._halo_sig, sig_index, it + 1, dest_pe=nbr,
                        nbytes=cg.halo_nbytes, name=f"halo_{side}",
                    )
                # wait for *incoming* halos of this iteration before SpMV
                for side in neighbors:
                    sig = 0 if side == "top" else 1
                    yield from nv.signal_wait_until(
                        cg._halo_sig, sig, WaitCond.GE, it + 1)
                # ② SpMV + p.q reduction
                yield from dev.compute(elements, name="spmv")
                cg.spmv(rank)
                yield from dev.compute(elements, name="dot_pq")
                pq = yield from reduce(cg.local_dot(rank, "p", "q"))
                alpha = rs / pq if pq else 0.0
                # ③ axpy + r.r reduction
                yield from dev.compute(elements * 3, name="axpy")
                cg.update_x_r(rank, alpha)
                yield from dev.compute(elements, name="dot_rr")
                rs_new = yield from reduce(cg.local_dot(rank, "r", "r"))
                beta = rs_new / rs if rs else 0.0
                # ④ direction update
                yield from dev.compute(int(elements * 1.5), name="update_p")
                cg.update_p(rank, beta)
                rs = rs_new
            cg.final_rs[rank] = rs

        kernel = yield from launch_persistent(
            host, stream, "cg_persistent", [TBGroup("cg", 200, body)]
        )
        yield from host.event_sync(kernel.event)


_VARIANTS = {cls.name: cls for cls in (BaselineCG, CPUFreeCG)}


def run_cg(variant: str, config: CGConfig) -> CGResult:
    """Run the named CG variant (``cg_baseline`` or ``cg_cpufree``)."""
    try:
        cls = _VARIANTS[variant]
    except KeyError:
        raise ValueError(f"unknown CG variant {variant!r}; known: {sorted(_VARIANTS)}") from None
    return cls(config).run()
