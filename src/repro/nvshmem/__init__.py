"""NVSHMEM-like GPU-initiated communication library (simulated).

Implements the OpenSHMEM-for-GPUs subset the paper's CPU-Free model is
built on (§3.1.4, §4.1.1, §5.3):

- a PGAS **symmetric heap**: collective allocations that exist at the
  same "address" (name) on every PE — :class:`SymmetricArray`,
- **signals**: symmetric flag words with atomic signal operations —
  :class:`SignalArray`,
- device-side one-sided operations: ``putmem`` / ``putmem_nbi`` /
  ``putmem_signal[_nbi]`` (and the block-cooperative ``x_…_block``
  variants), strided ``iput``, single-element ``p``, ``signal_op``,
  ``signal_wait_until``, ``quiet``, ``fence``, ``barrier_all``.

Fidelity notes that matter for the reproduction:

- non-blocking (``nbi``) operations return immediately and complete
  asynchronously; **signal delivery is ordered after data delivery**
  for the composite put-with-signal calls, exactly the guarantee the
  paper's halo protocol relies on;
- a bare ``signal_op`` after an ``iput`` with **no intervening
  ``quiet``** genuinely races with the data (the signal travels on its
  own lower-latency path) — the §5.3.1 requirement that generated code
  emit ``nvshmem_quiet()`` is enforced by observable data corruption,
  and the failure-injection tests exercise it.
"""

from repro.nvshmem.api import NVSHMEMRuntime
from repro.nvshmem.device import NVSHMEMDevice, SignalOp, WaitCond
from repro.nvshmem.heap import SignalArray, SymmetricArray, SymmetricHeap
from repro.nvshmem.teams import Team

__all__ = [
    "NVSHMEMDevice",
    "NVSHMEMRuntime",
    "SignalArray",
    "SignalOp",
    "SymmetricArray",
    "SymmetricHeap",
    "Team",
    "WaitCond",
]
