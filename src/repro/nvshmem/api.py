"""Host-side NVSHMEM runtime: init, symmetric allocation, barriers.

Mirrors the host API surface the paper's code uses: ``nvshmem_init``
(implicit in construction), ``nvshmem_malloc``, host ``barrier_all``,
and handing device kernels their per-PE device context
(:class:`~repro.nvshmem.device.NVSHMEMDevice`).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

import numpy as np

from repro.nvshmem.device import NVSHMEMDevice, SignalOp
from repro.nvshmem.heap import SignalArray, SymmetricArray, SymmetricHeap
from repro.nvshmem.teams import Team
from repro.runtime.context import MultiGPUContext
from repro.runtime.mpi import HostBarrier
from repro.sim import Flag
from repro.sim.stacked import Stacked

__all__ = ["NVSHMEMRuntime", "Team"]


class NVSHMEMRuntime:
    """One NVSHMEM job: ``n_pes`` processing elements on one node."""

    def __init__(self, ctx: MultiGPUContext, n_pes: int | None = None) -> None:
        self.ctx = ctx
        self.n_pes = n_pes if n_pes is not None else ctx.num_gpus
        if self.n_pes > ctx.num_gpus:
            raise ValueError("more PEs than GPUs on the node")
        self.heap = SymmetricHeap(ctx.memory, ctx.sim, self.n_pes)
        #: per-PE count of in-flight non-blocking deliveries (for quiet)
        self._pending = [
            Flag(ctx.sim, 0, name=f"nvshmem.pending.pe{pe}") for pe in range(self.n_pes)
        ]
        self._host_barrier = HostBarrier(
            ctx.sim, self.n_pes, ctx.cost.nvshmem_host_barrier_us, name="nvshmem.host"
        )
        self._device_barrier = HostBarrier(
            ctx.sim, self.n_pes, ctx.cost.grid_sync_us, name="nvshmem.device"
        )
        # Flow-event correlation (observability): a monotonic id is
        # allocated per signal-carrying op at issue time; the delivery
        # leg notes it here when the signal lands, keyed by the value
        # the word took — so the matching ``signal_wait_until`` can
        # look up the delivery whose update it actually observed (the
        # satisfying one), not merely the last to land.
        self._flow_seq = 0
        self._signal_flow: dict[tuple[int, int, int], tuple[int, int]] = {}
        # Per-(src, dst) route accounting for ``fence``: plain-int
        # issue/completion counters (always maintained — dict writes,
        # zero simulator events) plus a completion Flag created lazily
        # only when a post-fence delivery actually has to wait for a
        # pre-fence one.  A fence snapshots the issue counter as the
        # route's "bar"; deliveries issued later hold their effects
        # until the done counter reaches their bar.  Runs that never
        # fence (or fence with nothing in flight) create no flags and
        # stay byte-identical.
        self._route_issued: dict[tuple[int, int], int] = {}
        self._route_done: dict[tuple[int, int], int] = {}
        self._route_done_flag: dict[tuple[int, int], Flag] = {}
        self._fence_bar: dict[tuple[int, int], int] = {}
        # Per-(src, dst) delivery channels, engaged only under an active
        # fault plan: jitter and retransmission must not reorder
        # deliveries between the same pair of PEs (real transports keep
        # point-to-point ordering through link-level retry).  Each
        # channel is an issue counter plus a "last completed seq" flag
        # that delivery legs wait on before applying their effects.
        # Channel maps (and the coalescing batch map below) are sharded
        # by the source PE's NVSwitch domain: at 256+ PEs a single dict
        # churning with every route's keys is the hot allocation site,
        # and per-domain maps keep each one small.  Flat nodes get one
        # shard, which is byte-identical to the old single dict.
        self._dom = [ctx.topology.domain_of(pe) for pe in range(self.n_pes)]
        self._n_domains = ctx.topology.num_domains
        self._chan_issue: list[dict[tuple[int, int], int]] = [
            {} for _ in range(self._n_domains)
        ]
        self._chan_done: list[dict[tuple[int, int], Flag]] = [
            {} for _ in range(self._n_domains)
        ]
        # Op/wait accounting accumulated as plain slots shared by every
        # NVSHMEMDevice handle (handles are created per kernel body) and
        # folded into the registry by flush_metrics() — registry lookups
        # are too slow for the per-op path.
        self._op_acc: dict = {}
        self._wait_acc: dict = {}
        #: memo for NVSHMEMDevice._wire_time — pure per (src, dest,
        #: nbytes, scope) on the happy path; unused under a fault plan
        self._wire_memo: dict = {}
        self._wait_hist: dict = {}
        # Coalesced delivery batches: open batch per (src, dst, arrival
        # time).  Fault-free, unmonitored delivery legs enqueue here
        # instead of spawning one generator each; a single callback
        # event applies the whole batch at arrival (see
        # ``_deliver_batch`` for the per-leg bookkeeping, which mirrors
        # the generator path op for op).  Sharded per source domain —
        # see the channel maps above.
        self._batches: list[dict[tuple[int, int, float], list]] = [
            {} for _ in range(self._n_domains)
        ]
        # Teams (``nvshmemx_team_split_strided`` surface): the world
        # team plus lazily built per-domain and cross-domain splits.
        self._team_world: Team | None = None
        self._domain_teams: list[Team] | None = None
        self._leader_team: Team | None = None
        #: per-PE proxy-thread accounting (count, us) for inter-node
        #: puts, folded into nvshmem.proxy.* counters at flush
        self._proxy_acc: dict[int, list] = {}
        #: coalescing statistics (engine-internal, not published —
        #: published engine counters stay batching-invariant)
        self.n_batches = 0
        self.n_coalesced_legs = 0
        ctx.add_metric_flusher(self.flush_metrics)

    def flush_metrics(self) -> None:
        """Fold accumulated op/wait accounting into the registry
        (called by the owning context after each simulation run)."""
        m = self.ctx.metrics
        if m is None:
            return
        for (pe, op, dest_pe), (n, nbytes) in sorted(self._op_acc.items()):
            labels = {"op": op, "src": str(pe), "dst": str(dest_pe)}
            m.counter("nvshmem.ops", **labels).inc(n)
            if nbytes:
                m.counter("nvshmem.bytes", **labels).inc(nbytes)
        self._op_acc.clear()
        for (pe, src), (n, wait_us) in sorted(self._wait_acc.items()):
            m.counter("nvshmem.wait.count", pe=str(pe), src=src).inc(n)
            m.counter("nvshmem.wait.us", pe=str(pe), src=src).inc(wait_us)
        self._wait_acc.clear()
        for pe in sorted(self._proxy_acc):
            n, us = self._proxy_acc[pe]
            m.counter("nvshmem.proxy.ops", pe=str(pe)).inc(n)
            m.counter("nvshmem.proxy.us", pe=str(pe)).inc(us)
        self._proxy_acc.clear()

    # -- flow correlation ------------------------------------------------------

    def next_flow_id(self) -> int:
        """Allocate a trace flow id (deterministic: issue order)."""
        self._flow_seq += 1
        return self._flow_seq

    def channel_seq(self, src: int, dst: int) -> tuple[int, Flag]:
        """Allocate the next delivery sequence number on ``src -> dst``
        and return it with the channel's completion flag (fault-mode
        FIFO ordering — see ``_chan_issue`` above)."""
        key = (src, dst)
        shard = self._dom[src]
        done = self._chan_done[shard].get(key)
        if done is None:
            done = self._chan_done[shard][key] = Flag(
                self.ctx.sim, 0, name=f"nvshmem.chan.pe{src}->pe{dst}"
            )
        seq = self._chan_issue[shard].get(key, 0) + 1
        self._chan_issue[shard][key] = seq
        return seq, done

    def enqueue_coalesced(
        self,
        src: int,
        dst: int,
        wire_us: float,
        write: Any,
        signal: tuple[Flag, int, "SignalOp"] | None,
        name: str,
        flow: int | None,
        signal_index: int | None,
    ) -> None:
        """Append one delivery leg to the open ``(src, dst)`` batch
        arriving at ``now + wire_us``, opening the batch (one engine
        callback event) if none exists.

        Only fault-free, monitor-free, sanitizer-free, fence-clear legs
        may be enqueued — the caller (``NVSHMEMDevice._deliver_async``)
        guarantees it.  Virtual accounting: the generator path costs
        one spawned process, two generator steps, one ready-queue pop
        (the spawn step) and one calendar pop (the post-Delay step) per
        leg; those counters are charged here so published engine
        metrics are identical whichever path ran.
        """
        sim = self.ctx.sim
        arrival = sim.now + wire_us
        # Batched runs: arrival is a vector clock whose hash and
        # equality follow the pilot member only — key by the full
        # member tuple so legs merge only when EVERY member arrives
        # at the same instant (a conservative subset of the scalar
        # path's per-member merges; coalescing granularity never
        # changes results, so the demuxed output is unaffected).
        key = (src, dst,
               arrival.v if isinstance(arrival, Stacked) else arrival)
        batches = self._batches[self._dom[src]]
        batch = batches.get(key)
        leg = (write, signal, name, flow, signal_index, sim.now)
        if batch is None:
            batches[key] = [leg]
            sim.call_at(arrival, lambda: self._deliver_batch(key))
            self.n_batches += 1
        else:
            batch.append(leg)
        self.n_coalesced_legs += 1
        sim.n_spawned += 1
        sim.n_events += 2
        sim.n_ready_pops += 1
        sim.n_heap_pops += 1

    def _deliver_batch(self, key: tuple[int, int, float]) -> None:
        """Apply every leg of a coalesced batch, in issue order.

        Per leg, this replays the generator delivery path exactly:
        write, signal apply (+ flow attribution on value change), route
        completion, pending drain + counter sample, wire-lane trace
        span.  Interleaved effects (e.g. a ``quiet`` waking between two
        legs' pending decrements) are impossible only because all legs
        share one timestamp and waiter wakeups are scheduled, not run
        inline — the same holds for the generator path, whose legs step
        back-to-back within the timestep.
        """
        src, dst, _ = key
        batch = self._batches[self._dom[src]].pop(key)
        ctx = self.ctx
        sim = ctx.sim
        pending = self._pending[src]
        tracer = ctx.tracer
        counter_name = f"nvshmem.pending.pe{src}"
        lane = f"wire.pe{src}->pe{dst}"
        now = sim.now
        for write, signal, name, flow, signal_index, start in batch:
            if write is not None:
                write()
            if signal is not None:
                flag, value, op = signal
                before = flag.value
                if op is SignalOp.SET:
                    flag.set(value)
                else:
                    flag.add(value)
                if (flow is not None and signal_index is not None
                        and flag.value != before):
                    self._note_signal_flow(dst, signal_index, flag.value, flow, src)
            self.route_complete(src, dst)
            pending.add(-1)
            if tracer is not None:
                tracer.add_counter(counter_name, now, pending.value)
                meta = {"flow_s": flow} if flow is not None else None
                tracer.record(lane, name, "comm", start, now, meta)

    def _note_signal_flow(
        self, pe: int, index: int, value: int, flow_id: int, src_pe: int
    ) -> None:
        """Record that ``flow_id`` from ``src_pe`` drove signal word
        ``index`` on PE ``pe`` to ``value`` (called at
        signal-application time, only when the value actually changed —
        a same-value set wakes nobody and must not claim attribution)."""
        self._signal_flow[(pe, index, value)] = (flow_id, src_pe)

    def signal_flow_at(self, pe: int, index: int, value: int) -> tuple[int, int] | None:
        """``(flow_id, src_pe)`` of the delivery that drove the signal
        word to ``value`` — the one a waiter resumed with ``value``
        actually observed — or ``None`` for locally-set words.

        Keying by value keeps attribution exact even when a second
        delivery lands in the same timestep before the waiter steps
        (the old last-writer bookkeeping named that later delivery).
        If distinct deliveries ever revisit the same value (a set to a
        previously used number), the latest one wins — accepted, since
        the protocol values in this repo are monotonic iteration
        counters.
        """
        return self._signal_flow.get((pe, index, value))

    # -- per-route ordering (fence) ----------------------------------------------

    def route_issue(self, src: int, dst: int) -> int:
        """Count one non-blocking delivery issued on ``src -> dst``;
        returns the fence bar the delivery must respect (0 = none)."""
        key = (src, dst)
        self._route_issued[key] = self._route_issued.get(key, 0) + 1
        return self._fence_bar.get(key, 0)

    def route_complete(self, src: int, dst: int) -> None:
        """Count one delivery on ``src -> dst`` as complete (called on
        every exit path of a delivery leg, including lost and failed
        ones, else fenced deliveries behind it would stall forever)."""
        key = (src, dst)
        done = self._route_done.get(key, 0) + 1
        self._route_done[key] = done
        flag = self._route_done_flag.get(key)
        if flag is not None:
            flag.set(done)

    def route_done_count(self, src: int, dst: int) -> int:
        return self._route_done.get((src, dst), 0)

    def route_done_flag(self, src: int, dst: int) -> Flag:
        """Completion flag for ``src -> dst``, created on first need
        and seeded with the current done count."""
        key = (src, dst)
        flag = self._route_done_flag.get(key)
        if flag is None:
            flag = self._route_done_flag[key] = Flag(
                self.ctx.sim,
                self._route_done.get(key, 0),
                name=f"nvshmem.route.pe{src}->pe{dst}",
            )
        return flag

    def set_fence(self, src: int) -> None:
        """``nvshmem_fence`` from PE ``src``: snapshot the issue counter
        of every route with in-flight deliveries as its new bar."""
        for (route_src, dst), issued in self._route_issued.items():
            if route_src != src:
                continue
            if issued > self._route_done.get((route_src, dst), 0):
                self._fence_bar[(route_src, dst)] = issued

    # -- allocation ------------------------------------------------------------

    def malloc(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        fill: float | None = 0.0,
    ) -> SymmetricArray:
        """``nvshmem_malloc``: collective symmetric allocation.

        When a sanitizer is attached to the context, the allocation is
        registered for happens-before access tracking.
        """
        arr = self.heap.malloc(name, shape, dtype, fill)
        sanitizer = self.ctx.sanitizer
        if sanitizer is not None:
            sanitizer.register_array(arr)
        return arr

    def malloc_signals(self, name: str, n_signals: int) -> SignalArray:
        """Allocate symmetric signal words (flags in the symmetric heap).

        When the context runs under a fault plan with a watchdog, every
        signal word is marked for monitoring: a ``signal_wait_until``
        on it must resume within the watchdog budget or the run ends in
        a :class:`~repro.sim.WatchdogError` diagnostic instead of a
        silent hang.  Host joins and barriers stay unmonitored.
        """
        signals = self.heap.malloc_signals(name, n_signals)
        watchdog = self.ctx.sim.watchdog
        if watchdog is not None:
            for pe in range(self.n_pes):
                for index in range(n_signals):
                    watchdog.watch(signals.flag(pe, index))
        return signals

    # -- device access ------------------------------------------------------------

    def device(self, pe: int, lane: str | None = None) -> NVSHMEMDevice:
        """Device-side API handle for PE ``pe`` (pass into kernel bodies)."""
        if not 0 <= pe < self.n_pes:
            raise ValueError(f"PE {pe} out of range (n_pes={self.n_pes})")
        return NVSHMEMDevice(self, pe, lane or f"gpu{pe}.nvshmem")

    def pending(self, pe: int) -> Flag:
        """In-flight delivery counter for PE ``pe`` (used by quiet)."""
        return self._pending[pe]

    def device_barrier(self) -> HostBarrier:
        return self._device_barrier

    def note_proxy(self, pe: int, us: float) -> None:
        """Account one proxy-thread forward issued by PE ``pe``."""
        acc = self._proxy_acc.get(pe)
        if acc is None:
            self._proxy_acc[pe] = [1, us]
        else:
            acc[0] += 1
            acc[1] += us

    # -- teams ------------------------------------------------------------

    @property
    def hierarchical(self) -> bool:
        """True when the PEs span more than one NVSwitch domain."""
        return self._n_domains > 1

    @property
    def team_world(self) -> Team:
        """``NVSHMEM_TEAM_WORLD``: every PE, in PE order."""
        if self._team_world is None:
            self._team_world = Team(self, "world", tuple(range(self.n_pes)))
        return self._team_world

    def team_split_strided(
        self, parent: Team, start: int, stride: int, size: int, name: str | None = None
    ) -> Team:
        """``nvshmemx_team_split_strided(parent, start, stride, size)``."""
        return parent.split_strided(start, stride, size, name=name)

    def domain_teams(self) -> list[Team]:
        """One team per NVSwitch domain (strided splits of the world
        team — contiguous PE ranges, since domains are contiguous)."""
        if self._domain_teams is None:
            groups: dict[int, list[int]] = {}
            for pe in range(self.n_pes):
                groups.setdefault(self._dom[pe], []).append(pe)
            self._domain_teams = [
                Team(self, f"domain{d}", tuple(groups[d])) for d in sorted(groups)
            ]
        return self._domain_teams

    def domain_team(self, pe: int) -> Team:
        """The NVSwitch-domain team containing global PE ``pe``."""
        if not 0 <= pe < self.n_pes:
            raise ValueError(f"PE {pe} out of range (n_pes={self.n_pes})")
        return self.domain_teams()[self._dom[pe]]

    def leader_team(self) -> Team:
        """Rank-0 PE of every domain — the PEs that rendezvous across
        NIC rails in a hierarchical barrier.  Its barrier charges a
        rail round trip on top of the device sync cost."""
        if self._leader_team is None:
            leaders = tuple(team.pes[0] for team in self.domain_teams())
            cost = self.ctx.cost.grid_sync_us
            node = self.ctx.node
            if node.is_hierarchical:
                cost += 2.0 * node.rail_latency_us
            self._leader_team = Team(
                self, "leaders", leaders, barrier_cost_us=cost
            )
        return self._leader_team

    def hierarchical_barrier(self, pe: int) -> Generator[Any, Any, None]:
        """Domain-aware ``barrier_all``: arrive at the local domain team,
        have each domain's leader rendezvous across the rails, then
        release the domain.  Replaces one flat ``n_pes``-way rendezvous
        (which would price every arrival as if it crossed a rail) with
        two NVLink-priced domain syncs plus one small leader sync."""
        dteam = self.domain_team(pe)
        yield from dteam.sync()
        if dteam.my_pe(pe) == 0:
            yield from self.leader_team().sync()
        yield from dteam.sync()

    # -- host collectives ------------------------------------------------------------

    def host_barrier_all(self, rank: int) -> Generator[Any, Any, None]:
        """``nvshmem_barrier_all`` issued from the host."""
        start = self.ctx.sim.now
        yield from self._host_barrier.wait()
        self.ctx.trace(f"host{rank}", "nvshmem_barrier_all", "sync", start, self.ctx.sim.now)
