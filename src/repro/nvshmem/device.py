"""Device-side NVSHMEM operations (issued from inside kernels).

Each op is a generator helper to be ``yield from``-ed inside a device
process (a thread-block group of a persistent kernel, or a discrete
kernel body).  Cost semantics:

========================  ===================================================
``putmem`` (blocking)      caller pays initiation + full wire time
``putmem_nbi``             caller pays initiation only; delivery completes
                           asynchronously (tracked for ``quiet``)
``putmem_signal[_nbi]``    as above; the signal is updated *after* the data
                           lands (NVSHMEM delivery-ordering guarantee)
``iput``                   strided: per-element issue cost, poor bandwidth
``p``                      single element, one thread
``signal_op``              separate tiny message: races with in-flight
                           ``nbi`` data unless ``quiet`` is called first
``signal_wait_until``      blocks on the local signal word (DES flag)
``quiet``                  blocks until all this PE's pending deliveries
                           complete
========================  ===================================================

Bandwidth depends on the *scope* of the issuing group: a single thread
cannot saturate NVLink, a warp does better, a full block (the
``nvshmemx_…_block`` extended API) reaches full link bandwidth.  This
is exactly why the paper's hand-written kernels use the block variants
while the DaCe-generated single-thread-scheduled code leaves bandwidth
on the table (§5.3.2).
"""

from __future__ import annotations

import enum
import operator
from collections.abc import Generator
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.faults.inject import DeliveryError, SignalWaitTimeout
from repro.sim import TIMEOUT, Delay, Flag, WaitFlag
from repro.sim.stacked import Stacked, as_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nvshmem.api import NVSHMEMRuntime
    from repro.nvshmem.heap import SignalArray, SymmetricArray

__all__ = ["NVSHMEMDevice", "Scope", "SignalOp", "WaitCond"]


class SignalOp(enum.Enum):
    """Atomic op applied to the destination signal word."""

    SET = "set"
    ADD = "add"


class WaitCond(enum.Enum):
    """Comparison for ``signal_wait_until`` (NVSHMEM_CMP_*)."""

    EQ = "eq"
    NE = "ne"
    GT = "gt"
    GE = "ge"
    LT = "lt"
    LE = "le"

    def check(self, value: int, target: int) -> bool:
        return _WAIT_COND_OPS[self](value, target)


_WAIT_COND_OPS = {
    WaitCond.EQ: operator.eq,
    WaitCond.NE: operator.ne,
    WaitCond.GT: operator.gt,
    WaitCond.GE: operator.ge,
    WaitCond.LT: operator.lt,
    WaitCond.LE: operator.le,
}


def _wait_command(flag: Flag, cond: WaitCond, target: int,
                  timeout: float | None = None) -> WaitFlag:
    """Build the cheapest WaitFlag for an NVSHMEM_CMP_* wait: GE/EQ map
    to the flag's indexed conditions directly, GT on integer targets
    rewrites to ``ge=target+1``, everything else scans a predicate."""
    if cond is WaitCond.GE:
        return WaitFlag(flag, timeout=timeout, ge=target)
    if cond is WaitCond.EQ:
        return WaitFlag(flag, timeout=timeout, eq=target)
    if cond is WaitCond.GT and isinstance(target, int):
        return WaitFlag(flag, timeout=timeout, ge=target + 1)
    check = _WAIT_COND_OPS[cond]
    return WaitFlag(flag, lambda v: check(v, target), timeout=timeout)


class Scope(enum.Enum):
    """Issuing-group scope of an extended (``nvshmemx_``) call."""

    THREAD = "thread"
    WARP = "warp"
    BLOCK = "block"


class NVSHMEMDevice:
    """Device-side API surface for one PE inside one kernel."""

    def __init__(self, runtime: "NVSHMEMRuntime", pe: int, lane: str) -> None:
        self.runtime = runtime
        self.pe = pe
        self.lane = lane
        # accumulation slots, shared runtime-wide — device handles are
        # short-lived, and registry lookups are too slow for the per-op
        # path (the runtime flushes these into the registry post-run);
        # the registry is bound here because ctx.metrics is fixed for
        # the context's lifetime and the property hop costs on hot paths
        self._metrics = runtime.ctx.metrics
        self._op_acc = runtime._op_acc
        self._wait_acc = runtime._wait_acc
        self._wait_hist = runtime._wait_hist
        #: fault injector (None = happy path, zero overhead)
        self._faults = runtime.ctx.faults
        #: wire-time memo, shared runtime-wide; disabled (None) under a
        #: fault plan, where the effective link varies over time
        self._wire_memo = (runtime._wire_memo
                           if runtime.ctx.topology.faults is None else None)
        #: hierarchical topology, or None on a flat node — cross-domain
        #: puts take the proxy-initiated rail path instead of NVLink
        topology = runtime.ctx.topology
        self._cluster = topology if topology.num_domains > 1 else None

    # -- internals -------------------------------------------------------------

    @property
    def _ctx(self):
        return self.runtime.ctx

    @property
    def _cost(self):
        return self.runtime.ctx.cost

    def _bw_fraction(self, scope: Scope) -> float:
        return {
            Scope.THREAD: self._cost.put_thread_bw_fraction,
            Scope.WARP: self._cost.put_warp_bw_fraction,
            Scope.BLOCK: 1.0,
        }[scope]

    def _wire_time(self, dest_pe: int, nbytes: int, scope: Scope) -> float:
        cluster = self._cluster
        if cluster is not None and cluster.cross_domain(self.pe, dest_pe):
            # never memoized: rail pricing depends on in-flight occupancy
            return self._proxy_wire(dest_pe, nbytes)
        memo = self._wire_memo
        if memo is None:  # fault plan active: the link may degrade over time
            link = self._ctx.topology.link(self.pe, dest_pe)
            return link.latency_us + nbytes / (
                link.bandwidth_gbps * self._bw_fraction(scope) * 1000.0)
        key = (self.pe, dest_pe,
               nbytes.v if isinstance(nbytes, Stacked) else nbytes, scope)
        t = memo.get(key)
        if t is None:
            link = self._ctx.topology.link(self.pe, dest_pe)
            t = memo[key] = link.latency_us + nbytes / (
                link.bandwidth_gbps * self._bw_fraction(scope) * 1000.0)
        return t

    def _proxy_wire(self, dest_pe: int, nbytes: float) -> float:
        """Inter-node put wire time: the SM rings the CPU proxy thread's
        doorbell, the proxy posts the NIC work request, and the NIC DMAs
        the bytes over the source domain's rail ("Demystifying NVSHMEM"
        — remote transports are proxy-initiated).  The proxy forward is
        charged as a span on the source PE's *host* lane so timelines
        and what-if attribute it to host work on the issuing node; the
        issuing scope is irrelevant (the NIC, not the thread group,
        moves the bytes)."""
        ctx = self._ctx
        proxy_us = self._cost.nvshmem_proxy_us
        now = ctx.sim.now
        ctx.trace(f"host{self.pe}", "proxy", "api", now, now + proxy_us)
        if self._metrics is not None:
            self.runtime.note_proxy(self.pe, proxy_us)
        return proxy_us + self._cluster.rail_transfer_us(self.pe, dest_pe, nbytes)

    def _staged_wire(self, dest_pe: int, nbytes: float) -> float | None:
        """Host-staged wire time when the direct link is marked down by
        an active fault plan, else ``None`` (use the direct route).
        The degraded path runs as host-driven DMA: ``pe -> host`` then
        ``host -> dest_pe``, plus the source domain's rail when the
        endpoints sit in different NVSwitch domains (the topology's
        ``staged_route_us`` charges the right legs either way)."""
        faults = self._faults
        if faults is None or not faults.link_down(self.pe, dest_pe):
            return None
        wire = self._ctx.topology.staged_route_us(self.pe, dest_pe, nbytes)
        faults.note_degraded_put(self.pe, dest_pe, nbytes)
        return wire

    def _faulty_wire(
        self,
        dest_pe: int,
        nbytes: float,
        scope: Scope,
        name: str,
        flag_name: str | None = None,
    ) -> Generator[Any, Any, None]:
        """Wire-time leg of a *blocking* put under an active fault plan:
        staged host routing when the link is down, per-attempt latency
        jitter, and bounded retry with exponential backoff (in simulated
        time) on dropped deliveries."""
        faults = self._faults
        staged = self._staged_wire(dest_pe, nbytes)
        if staged is not None:
            yield Delay(staged)
            return
        wire = self._wire_time(dest_pe, nbytes, scope)
        if not faults.delivery_faults_apply(self.pe, dest_pe):
            yield Delay(wire + faults.transfer_jitter_us(self.pe, dest_pe))
            return
        plan = faults.plan
        attempt = 0
        while True:
            yield Delay(wire + faults.transfer_jitter_us(self.pe, dest_pe))
            outcome, extra_us = faults.delivery_outcome(
                self.pe, dest_pe, name, flag_name, attempt)
            if outcome == "ok":
                break
            if outcome == "delay":
                yield Delay(extra_us)
                break
            # dropped — a blocking put observes the failure and retries
            # (silent losses are indistinguishable from drops here)
            attempt += 1
            if attempt > plan.retry_limit:
                raise DeliveryError(
                    f"{name}: pe{self.pe}->pe{dest_pe} delivery dropped "
                    f"{attempt} time(s); retry limit {plan.retry_limit} exhausted")
            yield Delay(faults.retry_backoff_us(attempt))
        if attempt:
            faults.note_retries(self.pe, dest_pe, attempt)

    def _apply_signal(self, flag: Flag, value: int, op: SignalOp) -> None:
        if op is SignalOp.SET:
            flag.set(value)
        else:
            flag.add(value)

    def _trace(self, name: str, category: str, start: float, meta: Any = None) -> None:
        self._ctx.trace(self.lane, name, category, start, self._ctx.sim.now, meta)

    def _record_op(self, op: str, dest_pe: int, nbytes: float = 0) -> None:
        """Account one device-side op in the metrics registry (count,
        modeled bytes, and link traffic for data-carrying ops)."""
        if self._metrics is None:
            return
        acc = self._op_acc.get((self.pe, op, dest_pe))
        if acc is None:
            acc = self._op_acc[(self.pe, op, dest_pe)] = [0, 0.0]
        acc[0] += 1
        if nbytes:
            acc[1] += nbytes
            # puts compute their own wire time (scope-dependent), so they
            # bypass topology.transfer_us — account the link traffic here
            self._ctx.topology.record_transfer(self.pe, dest_pe, nbytes)

    def _sample_pending(self) -> None:
        """Emit a Chrome-trace counter sample of in-flight deliveries."""
        tracer = self._ctx.tracer
        if tracer is not None:
            tracer.add_counter(
                f"nvshmem.pending.pe{self.pe}",
                self._ctx.sim.now,
                self.runtime.pending(self.pe).value,
            )

    def _deliver_async(
        self,
        dest_pe: int,
        wire_us: float,
        write: Any,
        signal: tuple[Flag, int, SignalOp] | None,
        name: str,
        flow: int | None = None,
        signal_index: int | None = None,
        allow_faults: bool = True,
    ) -> None:
        """Spawn the asynchronous delivery leg of an ``nbi`` operation.

        ``flow`` tags the delivery span as the producer of a trace flow
        event (the span ends exactly when the signal is applied, which
        is what a downstream ``signal_wait_until`` chains on).

        Under an active fault plan the delivery may pick up jitter, be
        delayed, or be dropped: non-silent drops retry with exponential
        backoff up to the plan's retry limit (then raise
        :class:`DeliveryError`); *silent* drops vanish — the sender's
        pending counter still drains, but neither data nor signal ever
        arrive, which is the lost-signal hang the watchdog diagnoses.
        ``allow_faults=False`` exempts host-staged (degraded-path)
        deliveries, which don't traverse the faulty NVLink.

        Under faults, deliveries between the same ``(src, dst)`` pair
        complete in issue order (each leg waits for its predecessor
        before applying its effects): jitter and retransmission must
        not let a later halo overtake an earlier one, exactly as real
        transports preserve point-to-point ordering through link-level
        retry.  Fault-free runs skip the machinery entirely — issue
        order and a constant wire time already imply arrival order.

        Fault-free runs with no engine monitor and no sanitizer take a
        *coalesced* fast path instead of spawning a generator: the leg
        joins the open batch for ``(src, dst, arrival)`` and a single
        callback event applies every leg at arrival, in issue order,
        with identical per-leg bookkeeping (see
        :meth:`NVSHMEMRuntime.enqueue_coalesced`).  Any condition that
        could observe per-leg scheduling — fault plans, the sanitizer's
        happens-before edges, an unsatisfied fence bar — falls back to
        the generator path.
        """
        ctx = self._ctx
        pending = self.runtime.pending(self.pe)
        pending.add(1)
        self._sample_pending()
        sim = ctx.sim
        runtime = self.runtime
        # fence ordering: remember the bar active at issue time (0 when
        # the PE never fenced this route — the common, event-free case)
        fence_bar = runtime.route_issue(self.pe, dest_pe)
        if (self._faults is None and sim.monitor is None
                and ctx.sanitizer is None and ctx.coalesce_comm
                and (fence_bar == 0
                     or runtime.route_done_count(self.pe, dest_pe) >= fence_bar)):
            runtime.enqueue_coalesced(
                self.pe, dest_pe, wire_us, write, signal, name, flow, signal_index
            )
            return
        faults = self._faults if allow_faults else None
        faulty = faults is not None and faults.delivery_faults_apply(self.pe, dest_pe)
        if self._faults is not None:
            seq, chan_done = self.runtime.channel_seq(self.pe, dest_pe)
        else:
            seq, chan_done = None, None

        def delivery() -> Generator[Any, Any, None]:
            start = sim.now
            lost = False
            if faults is None:
                yield Delay(wire_us)
            elif not faulty:
                yield Delay(wire_us + faults.transfer_jitter_us(self.pe, dest_pe))
            else:
                flag_name = signal[0].name if signal is not None else None
                plan = faults.plan
                attempt = 0
                while True:
                    yield Delay(wire_us + faults.transfer_jitter_us(self.pe, dest_pe))
                    outcome, extra_us = faults.delivery_outcome(
                        self.pe, dest_pe, name, flag_name, attempt)
                    if outcome == "ok":
                        break
                    if outcome == "delay":
                        yield Delay(extra_us)
                        break
                    if outcome == "lost":
                        lost = True
                        break
                    attempt += 1
                    if attempt > plan.retry_limit:
                        pending.add(-1)
                        self._sample_pending()
                        if chan_done is not None:
                            chan_done.set(seq)
                        runtime.route_complete(self.pe, dest_pe)
                        raise DeliveryError(
                            f"{name}: pe{self.pe}->pe{dest_pe} delivery dropped "
                            f"{attempt} time(s); retry limit {plan.retry_limit} "
                            f"exhausted")
                    yield Delay(faults.retry_backoff_us(attempt))
                if attempt:
                    faults.note_retries(self.pe, dest_pe, attempt)
            if chan_done is not None:
                # FIFO channel: hold effects until every earlier
                # delivery on this (src, dst) pair has completed
                yield WaitFlag(chan_done, ge=seq - 1)
            if fence_bar and runtime.route_done_count(self.pe, dest_pe) < fence_bar:
                # issued after a fence: hold effects until every
                # pre-fence delivery on this route has completed (the
                # bar is a pre-issue snapshot, so it is always < this
                # delivery's own seq — no self-wait, no deadlock)
                yield WaitFlag(runtime.route_done_flag(self.pe, dest_pe),
                               ge=fence_bar)
            if not lost:
                if write is not None:
                    write()
                if signal is not None:
                    flag, value, op = signal
                    before = flag.value
                    self._apply_signal(flag, value, op)
                    if (flow is not None and signal_index is not None
                            and flag.value != before):
                        runtime._note_signal_flow(
                            dest_pe, signal_index, flag.value, flow, self.pe)
            if chan_done is not None:
                # advance the channel even for lost deliveries, else
                # everything behind the loss would stall forever
                chan_done.set(seq)
            runtime.route_complete(self.pe, dest_pe)
            pending.add(-1)
            self._sample_pending()
            meta = {"flow_s": flow} if flow is not None and not lost else None
            label = f"{name}:lost" if lost else name
            self._ctx.trace(
                f"wire.pe{self.pe}->pe{dest_pe}", label, "comm", start, sim.now, meta
            )

        sim.spawn(delivery(), name=f"nvshmem.{name}.pe{self.pe}->pe{dest_pe}")

    def _writer(self, dst: "SymmetricArray", dst_index: Any, values: np.ndarray,
                dest_pe: int, name: str = "put"):
        """Deferred store of ``values`` into PE ``dest_pe``'s copy of ``dst``.

        Runs in the delivery process (or the caller, for blocking
        puts), so a sanitizer attributes the store to the process whose
        clock actually orders it — the chained signal then publishes
        exactly this store to waiters.
        """
        if dst is None:
            return None
        sanitizer = self._ctx.sanitizer
        src_pe = self.pe

        def write() -> None:
            dst.on(dest_pe).data[dst_index] = values
            if sanitizer is not None:
                sanitizer.record_symmetric(
                    dst, dest_pe, dst_index, "write",
                    site=f"{name}:pe{src_pe}->pe{dest_pe}", by_pe=src_pe,
                )

        return write

    # -- contiguous puts ---------------------------------------------------------

    def putmem(
        self,
        dst: "SymmetricArray | None",
        dst_index: Any,
        values: np.ndarray | float,
        dest_pe: int,
        *,
        nbytes: int | None = None,
        scope: Scope = Scope.BLOCK,
        name: str = "putmem",
    ) -> Generator[Any, Any, None]:
        """Blocking contiguous put to ``dest_pe``.

        ``dst=None`` with explicit ``nbytes`` is the timing-only form
        used by no-compute experiments.
        """
        values = np.asarray(values)
        size = as_size(nbytes) if nbytes is not None else values.nbytes
        self._record_op("putmem", dest_pe, size)
        start = self._ctx.sim.now
        if self._faults is None:
            yield Delay(self._cost.nvshmem_put_latency_us + self._wire_time(dest_pe, size, scope))
        else:
            yield Delay(self._cost.nvshmem_put_latency_us)
            yield from self._faulty_wire(dest_pe, size, scope, name)
        write = self._writer(dst, dst_index, values, dest_pe, name)
        if write is not None:
            write()
        self._trace(name, "comm", start)

    def putmem_nbi(
        self,
        dst: "SymmetricArray | None",
        dst_index: Any,
        values: np.ndarray | float,
        dest_pe: int,
        *,
        nbytes: int | None = None,
        scope: Scope = Scope.BLOCK,
        name: str = "putmem_nbi",
    ) -> Generator[Any, Any, None]:
        """Non-blocking put: returns after initiation; complete at ``quiet``."""
        values = np.array(values, copy=True)  # snapshot source at issue
        size = as_size(nbytes) if nbytes is not None else values.nbytes
        self._record_op("putmem_nbi", dest_pe, size)
        start = self._ctx.sim.now
        yield Delay(self._cost.nvshmem_put_latency_us)
        self._trace(f"{name}:issue", "comm", start)
        staged = self._staged_wire(dest_pe, size)
        wire = staged if staged is not None else self._wire_time(dest_pe, size, scope)
        self._deliver_async(dest_pe, wire, self._writer(dst, dst_index, values, dest_pe, name),
                            None, name, allow_faults=staged is None)

    def putmem_signal(
        self,
        dst: "SymmetricArray | None",
        dst_index: Any,
        values: np.ndarray | float,
        signal: "SignalArray",
        signal_index: int,
        signal_value: int,
        dest_pe: int,
        *,
        nbytes: int | None = None,
        sig_op: SignalOp = SignalOp.SET,
        scope: Scope = Scope.BLOCK,
        name: str = "putmem_signal",
    ) -> Generator[Any, Any, None]:
        """Blocking put + signal: data lands, then the signal updates."""
        values = np.asarray(values)
        size = as_size(nbytes) if nbytes is not None else values.nbytes
        self._record_op("putmem_signal", dest_pe, size)
        flow = self.runtime.next_flow_id()
        start = self._ctx.sim.now
        if self._faults is None:
            yield Delay(self._cost.nvshmem_put_latency_us + self._wire_time(dest_pe, size, scope))
        else:
            yield Delay(self._cost.nvshmem_put_latency_us)
            yield from self._faulty_wire(
                dest_pe, size, scope, name,
                flag_name=signal.flag(dest_pe, signal_index).name)
        write = self._writer(dst, dst_index, values, dest_pe, name)
        if write is not None:
            write()
        yield Delay(self._cost.nvshmem_signal_us)
        flag = signal.flag(dest_pe, signal_index)
        before = flag.value
        self._apply_signal(flag, signal_value, sig_op)
        if flag.value != before:
            self.runtime._note_signal_flow(
                dest_pe, signal_index, flag.value, flow, self.pe)
        self._trace(name, "comm", start, {"flow_s": flow})

    def putmem_signal_nbi(
        self,
        dst: "SymmetricArray | None",
        dst_index: Any,
        values: np.ndarray | float,
        signal: "SignalArray",
        signal_index: int,
        signal_value: int,
        dest_pe: int,
        *,
        nbytes: int | None = None,
        sig_op: SignalOp = SignalOp.SET,
        scope: Scope = Scope.BLOCK,
        name: str = "putmem_signal_nbi",
    ) -> Generator[Any, Any, None]:
        """The paper's workhorse: ``nvshmemx_putmem_signal_nbi_block``.

        Issue cost only; asynchronously the data is delivered and *then*
        the destination signal word is updated (§4.1.1 semaphore flow).
        """
        values = np.array(values, copy=True)
        size = as_size(nbytes) if nbytes is not None else values.nbytes
        self._record_op("putmem_signal_nbi", dest_pe, size)
        flow = self.runtime.next_flow_id()
        start = self._ctx.sim.now
        yield Delay(self._cost.nvshmem_put_latency_us)
        self._trace(f"{name}:issue", "comm", start)
        staged = self._staged_wire(dest_pe, size)
        wire = (staged if staged is not None else self._wire_time(dest_pe, size, scope)
                ) + self._cost.nvshmem_signal_us
        self._deliver_async(
            dest_pe,
            wire,
            self._writer(dst, dst_index, values, dest_pe, name),
            (signal.flag(dest_pe, signal_index), signal_value, sig_op),
            name,
            flow=flow,
            signal_index=signal_index,
            allow_faults=staged is None,
        )

    # -- strided / single-element --------------------------------------------------

    def iput(
        self,
        dst: "SymmetricArray | None",
        dst_index: Any,
        values: np.ndarray,
        dest_pe: int,
        *,
        elements: int | None = None,
        name: str = "iput",
    ) -> Generator[Any, Any, None]:
        """Strided put (``nvshmem_TYPE_iput``): per-element issue cost.

        Always issued by a single thread in NVSHMEM; no signal variant
        exists (§5.3.1), so generated code must follow with
        ``signal_op`` *after* a ``quiet``.  Non-blocking semantics.
        """
        values = np.array(values, copy=True)
        n = int(elements) if elements is not None else values.size
        self._record_op("iput", dest_pe, n * values.itemsize)
        start = self._ctx.sim.now
        yield Delay(self._cost.nvshmem_put_latency_us)
        self._trace(f"{name}:issue", "comm", start)
        staged = self._staged_wire(dest_pe, n * values.itemsize)
        if staged is not None:
            wire = staged
        else:
            link = self._ctx.topology.link(self.pe, dest_pe)
            wire = link.latency_us + n * self._cost.nvshmem_iput_element_us
        self._deliver_async(dest_pe, wire, self._writer(dst, dst_index, values, dest_pe, name),
                            None, name, allow_faults=staged is None)

    def p(
        self,
        dst: "SymmetricArray | None",
        dst_index: Any,
        value: float,
        dest_pe: int,
        *,
        name: str = "p",
    ) -> Generator[Any, Any, None]:
        """Single-element put (``nvshmem_TYPE_p``), non-blocking."""
        self._record_op("p", dest_pe, 8)
        start = self._ctx.sim.now
        yield Delay(self._cost.nvshmem_p_us)
        self._trace(f"{name}:issue", "comm", start)
        staged = self._staged_wire(dest_pe, 8)
        wire = staged if staged is not None else self._ctx.topology.link(self.pe, dest_pe).latency_us
        sanitizer = self._ctx.sanitizer
        src_pe = self.pe

        def write() -> None:
            if dst is not None:
                dst.on(dest_pe).data[dst_index] = value
                if sanitizer is not None:
                    sanitizer.record_symmetric(
                        dst, dest_pe, dst_index, "write",
                        site=f"{name}:pe{src_pe}->pe{dest_pe}", by_pe=src_pe,
                    )

        self._deliver_async(dest_pe, wire, write, None, name, allow_faults=staged is None)

    def p_mapped(
        self,
        dst: "SymmetricArray | None",
        dst_index: Any,
        values: np.ndarray | float,
        dest_pe: int,
        *,
        elements: int | None = None,
        threads: int = 1024,
        name: str = "p_mapped",
    ) -> Generator[Any, Any, None]:
        """Map-scheduled single-element puts (paper §5.3.2).

        Many GPU threads each issue ``nvshmem_TYPE_p`` for one element
        (grid-stride loop): issue cost is amortized across ``threads``
        and the aggregate delivery runs at warp-scope bandwidth.
        Non-blocking; follow with ``quiet`` + ``signal_op`` like
        ``iput``.
        """
        if threads <= 0:
            raise ValueError("threads must be positive")
        values = np.array(values, copy=True)
        n = int(elements) if elements is not None else values.size
        self._record_op("p_mapped", dest_pe, n * 8)
        waves = -(-n // threads)
        start = self._ctx.sim.now
        yield Delay(waves * self._cost.nvshmem_p_us)
        self._trace(f"{name}:issue", "comm", start)
        staged = self._staged_wire(dest_pe, n * 8)
        wire = staged if staged is not None else self._wire_time(dest_pe, n * 8, Scope.WARP)
        self._deliver_async(
            dest_pe, wire, self._writer(dst, dst_index, values, dest_pe, name), None, name,
            allow_faults=staged is None,
        )

    # -- signaling -------------------------------------------------------------------

    def signal_op(
        self,
        signal: "SignalArray",
        signal_index: int,
        value: int,
        dest_pe: int,
        *,
        op: SignalOp = SignalOp.SET,
        name: str = "signal_op",
    ) -> Generator[Any, Any, None]:
        """Standalone remote signal update (``nvshmemx_signal_op``).

        Travels on its own low-latency path: it does NOT wait for
        previously issued ``nbi`` data.  Call :meth:`quiet` first when
        the signal must publish earlier puts (§5.3.1).
        """
        self._record_op("signal_op", dest_pe, 8)
        flow = self.runtime.next_flow_id()
        start = self._ctx.sim.now
        yield Delay(self._cost.nvshmem_signal_us)
        self._trace(f"{name}:issue", "comm", start)
        staged = self._staged_wire(dest_pe, 8)
        wire = staged if staged is not None else self._ctx.topology.link(self.pe, dest_pe).latency_us
        self._deliver_async(
            dest_pe, wire, None,
            (signal.flag(dest_pe, signal_index), value, op), name,
            flow=flow, signal_index=signal_index, allow_faults=staged is None,
        )

    def signal_wait_until(
        self,
        signal: "SignalArray",
        signal_index: int,
        cond: WaitCond,
        target: int,
        *,
        timeout_us: float | None = None,
        retries: int | None = None,
        name: str = "signal_wait_until",
    ) -> Generator[Any, Any, int]:
        """Block on this PE's local signal word until ``cond`` holds.

        With a ``timeout_us`` (explicit, or inherited from an active
        fault plan's ``wait_timeout_us``) the wait is re-armed up to
        ``retries`` times, each attempt's budget growing by the plan's
        backoff factor; exhaustion raises :class:`SignalWaitTimeout`
        naming the signal and the last delivery attempt seen for it.
        Without a timeout the wait is unbounded, as in real NVSHMEM —
        the :class:`~repro.sim.Watchdog` is then the hang diagnosis.
        """
        flag = signal.flag(self.pe, signal_index)
        self._record_op("signal_wait", self.pe)
        start = self._ctx.sim.now
        yield Delay(self._cost.nvshmem_wait_poll_us)
        faults = self._faults
        if timeout_us is None and faults is not None:
            timeout_us = faults.plan.wait_timeout_us
        if timeout_us is None:
            result = yield _wait_command(flag, cond, target)
        else:
            if retries is None:
                retries = faults.plan.retry_limit if faults is not None else 0
            backoff = faults.plan.retry_backoff_factor if faults is not None else 2.0
            budget = timeout_us
            attempt = 0
            while True:
                result = yield _wait_command(flag, cond, target, timeout=budget)
                if result is not TIMEOUT:
                    break
                attempt += 1
                if faults is not None:
                    faults.note_wait_timeout(flag.name, attempt)
                if attempt > retries:
                    context = faults.watchdog_context(flag) if faults is not None else None
                    suffix = f" ({context})" if context else ""
                    raise SignalWaitTimeout(
                        f"{name}: pe{self.pe} gave up waiting for {flag.name} "
                        f"{cond.name} {target} after {attempt} timeout(s), last "
                        f"budget {budget:.3f}us{suffix}")
                budget *= backoff
                yield Delay(self._cost.nvshmem_wait_poll_us)
        # attribute to the delivery that drove the word to the value
        # this wait actually resumed with — a later delivery landing in
        # the same timestep must not claim the histogram/flow link
        info = self.runtime.signal_flow_at(self.pe, signal_index, int(result))
        meta = None
        src_label = "local"
        if info is not None:
            flow_id, src_pe = info
            meta = {"flow_f": flow_id}
            src_label = str(src_pe)
        m = self._metrics
        if m is not None:
            wait_us = self._ctx.sim.now - start
            acc = self._wait_acc.get((self.pe, src_label))
            if acc is None:
                acc = self._wait_acc[(self.pe, src_label)] = [0, 0.0]
            acc[0] += 1
            acc[1] += wait_us
            # the histogram needs every observation, so it is resolved
            # once per (pe, src) and fed immediately
            hist = self._wait_hist.get((self.pe, src_label))
            if hist is None:
                hist = self._wait_hist[(self.pe, src_label)] = m.histogram(
                    "nvshmem.wait.us.hist", pe=str(self.pe), src=src_label
                )
            hist.observe(wait_us)
        self._trace(name, "sync", start, meta)
        return flag.value

    # -- ordering ---------------------------------------------------------------------

    def quiet(self, *, name: str = "quiet") -> Generator[Any, Any, None]:
        """Block until all of this PE's pending deliveries complete."""
        pending = self.runtime.pending(self.pe)
        self._record_op("quiet", self.pe)
        start = self._ctx.sim.now
        yield Delay(self._cost.nvshmem_quiet_us)
        yield WaitFlag(pending, eq=0)
        self._trace(name, "sync", start)

    def fence(self, *, name: str = "fence") -> Generator[Any, Any, None]:
        """Ordering fence (``nvshmem_fence``).

        Real NVSHMEM ``fence`` is weaker than ``quiet``: it does not
        wait for anything, it only guarantees that deliveries issued
        *after* it become visible no earlier than deliveries issued
        *before* it on the same (src, dst) route.  Modeled exactly
        that way: the fence snapshots each in-flight route's issue
        counter as a bar (see ``NVSHMEMRuntime.set_fence``), and
        post-fence delivery legs hold their effects until the route's
        completion counter reaches the bar.  The caller pays only a
        small constant issue cost and never blocks.
        """
        self._record_op("fence", self.pe)
        start = self._ctx.sim.now
        yield Delay(self._cost.nvshmem_fence_us)
        self.runtime.set_fence(self.pe)
        self._trace(name, "sync", start)

    def barrier_all(self) -> Generator[Any, Any, None]:
        """Device-side barrier across all PEs (includes a quiet).

        On a hierarchical node the flat ``n_pes``-way rendezvous is
        replaced by the team-based domain-aware barrier (domain arrive,
        leaders rendezvous across rails, domain release)."""
        yield from self.quiet(name="barrier.quiet")
        if self.runtime.hierarchical:
            yield from self.runtime.hierarchical_barrier(self.pe)
        else:
            yield from self.runtime.device_barrier().wait()
