"""Symmetric heap: PGAS allocations and signal words.

``nvshmem_malloc`` is collective: the same size is allocated on every
PE and the returned "pointer" is symmetric — indexing it with a PE id
names that PE's copy.  We model a symmetric allocation as a
:class:`SymmetricArray`: one :class:`~repro.hw.memory.DeviceBuffer`
per PE, all with :attr:`~repro.hw.memory.Storage.SYMMETRIC` storage
(remotely accessible without explicit peer enablement — the PGAS
contract).

Signals (the flag words of ``nvshmemx_putmem_signal`` and
``nvshmem_signal_wait_until``) are allocated separately as
:class:`SignalArray` because waiting on them must integrate with the
DES: each signal word is a :class:`repro.sim.Flag`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.hw.memory import DeviceBuffer, MemoryManager, Storage
from repro.sim import Flag, Simulator

__all__ = ["HeapSnapshot", "SignalArray", "SymmetricArray", "SymmetricHeap",
           "element_range"]

#: (shape, repr(index)) -> flat [lo, hi) covering interval; index
#: expressions in stencil code are a handful of slices reused every
#: iteration, so this stays tiny.
_RANGE_CACHE: dict[tuple[tuple[int, ...], str], tuple[int, int]] = {}


def element_range(shape: tuple[int, ...], index: Any) -> tuple[int, int]:
    """Flat element interval ``[lo, hi)`` covered by ``array[index]``.

    The covering interval of the selected elements in row-major order —
    conservative for strided selections (it may include skipped
    elements), exact for the contiguous row-block slices the stencil
    variants use.  Used by the sanitizer to express heap accesses as
    offset ranges into a symmetric allocation.
    """
    key = (shape, repr(index))
    cached = _RANGE_CACHE.get(key)
    if cached is not None:
        return cached
    total = int(np.prod(shape))
    selected = np.arange(total).reshape(shape)[index]
    if selected.size == 0:
        lo, hi = 0, 0
    else:
        lo = int(selected.min())
        hi = int(selected.max()) + 1
    _RANGE_CACHE[key] = (lo, hi)
    return lo, hi


class SymmetricArray:
    """A collective allocation: one same-shaped buffer per PE."""

    def __init__(self, name: str, buffers: list[DeviceBuffer]) -> None:
        if not buffers:
            raise ValueError("symmetric array needs at least one PE")
        shapes = {b.shape for b in buffers}
        if len(shapes) != 1:
            raise ValueError(f"asymmetric shapes across PEs: {shapes}")
        self.name = name
        self._buffers = buffers

    @property
    def n_pes(self) -> int:
        return len(self._buffers)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._buffers[0].shape

    @property
    def dtype(self) -> np.dtype:
        return self._buffers[0].dtype

    def on(self, pe: int) -> DeviceBuffer:
        """This allocation's buffer on PE ``pe``."""
        if not 0 <= pe < self.n_pes:
            raise ValueError(f"PE {pe} out of range (n_pes={self.n_pes})")
        return self._buffers[pe]

    def local(self, pe: int) -> np.ndarray:
        """Shorthand for the backing NumPy array on PE ``pe``."""
        return self.on(pe).data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SymmetricArray {self.name} {self.shape} x{self.n_pes} PEs>"


class SignalArray:
    """Symmetric array of signal words (uint64 in real NVSHMEM).

    Each word on each PE is a DES :class:`~repro.sim.Flag` so device
    code can block on it (``signal_wait_until``).
    """

    def __init__(self, sim: Simulator, name: str, n_pes: int, n_signals: int) -> None:
        if n_pes <= 0 or n_signals <= 0:
            raise ValueError("n_pes and n_signals must be positive")
        self.name = name
        self.n_pes = n_pes
        self.n_signals = n_signals
        self._flags = [
            [Flag(sim, 0, name=f"{name}[pe{pe}][{i}]") for i in range(n_signals)]
            for pe in range(n_pes)
        ]

    def flag(self, pe: int, index: int) -> Flag:
        """The signal word ``index`` residing on PE ``pe``."""
        if not 0 <= pe < self.n_pes:
            raise ValueError(f"PE {pe} out of range (n_pes={self.n_pes})")
        if not 0 <= index < self.n_signals:
            raise ValueError(f"signal {index} out of range (n_signals={self.n_signals})")
        return self._flags[pe][index]

    def value(self, pe: int, index: int) -> int:
        return self.flag(pe, index).value


class SymmetricHeap:
    """Allocator for symmetric memory across all PEs of a node."""

    def __init__(self, memory: MemoryManager, sim: Simulator, n_pes: int) -> None:
        if n_pes > memory.num_gpus:
            raise ValueError("more PEs than GPUs")
        self.memory = memory
        self.sim = sim
        self.n_pes = n_pes
        self._arrays: dict[str, SymmetricArray] = {}
        self._signals: dict[str, SignalArray] = {}

    def malloc(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        fill: float | None = 0.0,
    ) -> SymmetricArray:
        """``nvshmem_malloc``: collective same-size allocation on all PEs."""
        if name in self._arrays:
            raise ValueError(f"symmetric array {name!r} already allocated")
        buffers = [
            self.memory.alloc(pe, f"sym:{name}", shape, dtype, Storage.SYMMETRIC, fill)
            for pe in range(self.n_pes)
        ]
        arr = SymmetricArray(name, buffers)
        self._arrays[name] = arr
        return arr

    def malloc_signals(self, name: str, n_signals: int) -> SignalArray:
        """Allocate ``n_signals`` symmetric signal words per PE.

        The paper's stencil uses four per PE: {top, bottom} × {ready,
        done} (§4.1.1).
        """
        if name in self._signals:
            raise ValueError(f"signal array {name!r} already allocated")
        sig = SignalArray(self.sim, name, self.n_pes, n_signals)
        self._signals[name] = sig
        return sig

    def free(self, arr: SymmetricArray) -> None:
        """Collective free."""
        if self._arrays.get(arr.name) is not arr:
            raise RuntimeError(f"symmetric array {arr.name!r} not owned by this heap")
        for pe in range(arr.n_pes):
            self.memory.free(arr.on(pe))
        del self._arrays[arr.name]

    def get(self, name: str) -> SymmetricArray:
        return self._arrays[name]

    # -- checkpoints ----------------------------------------------------------

    def snapshot(self, epoch: int) -> "HeapSnapshot":
        """Deep-copy the whole symmetric state: every allocation's
        per-PE buffer plus every signal word's value, tagged with a
        checkpoint ``epoch``.  Deterministic: allocations iterate in
        sorted-name order, PEs in rank order."""
        arrays = {
            name: tuple(arr.local(pe).copy() for pe in range(arr.n_pes))
            for name, arr in sorted(self._arrays.items())
        }
        signals = {
            name: tuple(
                tuple(sig.value(pe, i) for i in range(sig.n_signals))
                for pe in range(sig.n_pes)
            )
            for name, sig in sorted(self._signals.items())
        }
        return HeapSnapshot(epoch=epoch, arrays=arrays, signals=signals)

    def restore(self, snap: "HeapSnapshot", pes: Any = None) -> None:
        """Write a snapshot back into the live heap (all PEs, or only
        those in ``pes`` — a restarted PE recovers *its* segments while
        survivors keep their newer state until rollback aligns them).

        Restoring a snapshot taken from a different heap layout is a
        hard error: allocations must match by name and shape.
        """
        selected = None if pes is None else set(pes)
        for name, copies in snap.arrays.items():
            arr = self._arrays.get(name)
            if arr is None:
                raise KeyError(f"snapshot has unknown symmetric array {name!r}")
            if len(copies) != arr.n_pes or copies[0].shape != arr.shape:
                raise ValueError(
                    f"snapshot/heap layout mismatch for {name!r}: "
                    f"{len(copies)} PEs of {copies[0].shape} vs "
                    f"{arr.n_pes} PEs of {arr.shape}")
            for pe in range(arr.n_pes):
                if selected is None or pe in selected:
                    arr.local(pe)[...] = copies[pe]
        for name, per_pe in snap.signals.items():
            sig = self._signals.get(name)
            if sig is None:
                raise KeyError(f"snapshot has unknown signal array {name!r}")
            for pe in range(sig.n_pes):
                if selected is None or pe in selected:
                    for i, value in enumerate(per_pe[pe]):
                        sig.flag(pe, i).set(value)


@dataclass(frozen=True, eq=False)
class HeapSnapshot:
    """An epoch-tagged deep copy of a :class:`SymmetricHeap`'s state.

    ``arrays`` maps allocation name -> per-PE NumPy copies; ``signals``
    maps signal-array name -> per-PE tuples of signal-word values.
    ``eq=False``: identity comparison only — content comparison is the
    tests' job (NumPy arrays make ``==`` elementwise).
    """

    epoch: int
    arrays: dict[str, tuple[np.ndarray, ...]] = field(default_factory=dict)
    signals: dict[str, tuple[tuple[int, ...], ...]] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Total checkpoint payload size (the simulated checkpoint cost
        driver: what a real implementation would write to NVMe/host)."""
        return sum(c.nbytes for copies in self.arrays.values() for c in copies)
