"""NVSHMEM teams: ordered PE subsets with their own collectives.

Mirrors the ``nvshmemx_team_split_strided`` surface: a team is an
ordered tuple of global PE numbers, child teams are carved out of a
parent by ``(start, stride, size)`` over the *parent's* ranks, and each
team owns its own barrier rendezvous.  On a hierarchical node
(:class:`~repro.hw.interconnect.ClusterTopology`) the runtime builds
two standard splits of the world team:

- one team per NVSwitch domain (contiguous ranks — all-to-all NVLink
  inside, so a domain barrier costs only ``grid_sync_us``), and
- cross-domain "rail" teams linking PEs with the same local index in
  every domain (these cross NIC rails, so their barrier also pays a
  rail round trip).

These are the API for domain-aware barriers: ``barrier_all`` on a
hierarchical topology decomposes into domain-arrive → leader
rendezvous across rails → domain-release, instead of one flat
``n_pes``-way rendezvous over rails.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.runtime.mpi import HostBarrier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.nvshmem.api import NVSHMEMRuntime

__all__ = ["Team"]


class Team:
    """An ordered set of PEs, addressable by team rank.

    ``pes[i]`` is the global PE number of team rank ``i`` — the same
    contract as ``nvshmem_team_translate_pe(team, i, NVSHMEM_TEAM_WORLD)``.
    """

    __slots__ = ("_barrier", "_barrier_cost_us", "_rank_of", "name", "pes", "runtime")

    def __init__(
        self,
        runtime: "NVSHMEMRuntime",
        name: str,
        pes: tuple[int, ...],
        *,
        barrier_cost_us: float | None = None,
    ) -> None:
        if not pes:
            raise ValueError("a team needs at least one PE")
        for pe in pes:
            if not 0 <= pe < runtime.n_pes:
                raise ValueError(f"PE {pe} out of range (n_pes={runtime.n_pes})")
        if len(set(pes)) != len(pes):
            raise ValueError(f"duplicate PEs in team {name!r}: {pes}")
        self.runtime = runtime
        self.name = name
        self.pes = tuple(pes)
        self._rank_of = {pe: i for i, pe in enumerate(self.pes)}
        self._barrier: HostBarrier | None = None
        self._barrier_cost_us = barrier_cost_us

    # -- introspection -----------------------------------------------------

    @property
    def n_pes(self) -> int:
        """Team size (``nvshmem_team_n_pes``)."""
        return len(self.pes)

    def my_pe(self, pe: int) -> int:
        """Team rank of global PE ``pe`` (``nvshmem_team_my_pe``)."""
        try:
            return self._rank_of[pe]
        except KeyError:
            raise ValueError(f"PE {pe} is not a member of team {self.name!r}") from None

    def translate(self, rank: int) -> int:
        """Global PE of team rank ``rank`` (translate to ``TEAM_WORLD``)."""
        if not 0 <= rank < len(self.pes):
            raise ValueError(f"rank {rank} out of range for team {self.name!r}")
        return self.pes[rank]

    def __contains__(self, pe: int) -> bool:
        return pe in self._rank_of

    def __len__(self) -> int:
        return len(self.pes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Team({self.name!r}, pes={self.pes})"

    # -- splitting ---------------------------------------------------------

    def split_strided(
        self, start: int, stride: int, size: int, name: str | None = None
    ) -> "Team":
        """``nvshmemx_team_split_strided`` — child from parent ranks.

        The child's members are the parent's ranks ``start``,
        ``start + stride``, ... (``size`` of them), translated to global
        PE numbers.  Indices are ranks *in this team*, not global PEs.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        if stride <= 0:
            raise ValueError("stride must be positive")
        last = start + stride * (size - 1)
        if start < 0 or last >= len(self.pes):
            raise ValueError(
                f"strided split (start={start}, stride={stride}, size={size}) "
                f"exceeds team {self.name!r} of {len(self.pes)} PEs"
            )
        members = tuple(self.pes[start + stride * i] for i in range(size))
        child_name = name or f"{self.name}[{start}:+{stride}x{size}]"
        return Team(self.runtime, child_name, members)

    # -- collectives -------------------------------------------------------

    def barrier(self) -> HostBarrier:
        """The team's reusable rendezvous (created lazily)."""
        if self._barrier is None:
            cost = self._barrier_cost_us
            if cost is None:
                cost = self.runtime.ctx.cost.grid_sync_us
            self._barrier = HostBarrier(
                self.runtime.ctx.sim,
                len(self.pes),
                cost,
                name=f"nvshmem.team.{self.name}",
            )
        return self._barrier

    def sync(self) -> Generator[Any, Any, None]:
        """``nvshmem_team_sync`` — block until every member arrives."""
        yield from self.barrier().wait()
