"""Persistent-kernel harness with specialized thread-block groups.

One cooperative launch hosts the whole application (paper Listing 4.1):
the kernel body spawns one simulator process per *TB group* (e.g.
``comm_top``, ``comm_bottom``, ``inner``), each running its own loop
with GPU-initiated communication, and a shared :class:`GridBarrier`
provides ``grid.sync()`` between time steps.

The launch path inherits the cooperative co-residency check, so a
persistent kernel that requests more blocks than fit raises
:class:`~repro.runtime.kernel.CooperativeLaunchError` (§4.1.4).
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any

from repro.core.sync import GridBarrier
from repro.runtime.context import HostThread
from repro.runtime.kernel import DeviceKernelContext, KernelSpec
from repro.runtime.stream import Event, Stream
from repro.sim import WaitProcess

__all__ = ["PersistentKernel", "TBGroup", "launch_persistent"]


#: A TB-group body: takes (device kernel context, grid barrier), yields.
GroupBody = Callable[[DeviceKernelContext, GridBarrier], Generator[Any, Any, Any]]


@dataclass(frozen=True)
class TBGroup:
    """A named group of specialized thread blocks inside one kernel."""

    name: str
    blocks: int
    body: GroupBody

    def __post_init__(self) -> None:
        if self.blocks <= 0:
            raise ValueError(f"TB group {self.name!r} needs at least one block")


@dataclass(frozen=True)
class PersistentKernel:
    """Handle for a launched persistent kernel."""

    event: Event
    spec: KernelSpec
    barrier: GridBarrier


def launch_persistent(
    host: HostThread,
    stream: Stream,
    name: str,
    groups: list[TBGroup],
    *,
    threads_per_block: int = 1024,
) -> Generator[Any, Any, PersistentKernel]:
    """Cooperatively launch one persistent kernel with specialized groups.

    Host involvement ends here — this is the single launch of the
    CPU-Free model.  Returns a handle whose ``event`` completes when
    every group's loop finishes (kernel teardown).
    """
    if not groups:
        raise ValueError("persistent kernel needs at least one TB group")
    total_blocks = sum(g.blocks for g in groups)
    spec = KernelSpec(name, blocks=total_blocks,
                      threads_per_block=threads_per_block, cooperative=True)
    ctx = host.ctx
    barrier = GridBarrier(
        ctx.sim, parties=len(groups), cost_us=ctx.cost.grid_sync_us,
        lane=f"{stream.lane}.{name}",
    )

    def kernel_body(dev: DeviceKernelContext) -> Generator[Any, Any, None]:
        procs = []
        for group in groups:
            group_dev = DeviceKernelContext(
                dev.ctx, dev.device, spec, f"{stream.lane}.{group.name}"
            )
            procs.append(
                ctx.sim.spawn(
                    group.body(group_dev, barrier),
                    name=f"gpu{dev.device}.{name}.{group.name}",
                )
            )
        for proc in procs:
            yield WaitProcess(proc)

    event = yield from host.launch(stream, spec, kernel_body)
    return PersistentKernel(event=event, spec=spec, barrier=barrier)
