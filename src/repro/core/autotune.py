"""Empirical autotuning of the thread-block specialization split.

The paper fixes the boundary/inner split with the §4.1.2 closed-form
formula.  This module searches the split space empirically — running
the actual (timing-only) simulation for each candidate — which serves
two purposes:

- a *production* feature: pick the best split for odd domain shapes
  where the analytic formula is only a heuristic, and
- an *evaluation* of the formula itself: the autotuner's optimum should
  be at (or within noise of) the formula's choice on the paper's
  domains (checked by the test suite and the TB-split ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.specialization import SpecializationPlan, plan_blocks

__all__ = ["AutotuneReport", "autotune_tb_split", "candidate_splits"]


@dataclass(frozen=True)
class AutotuneReport:
    """Outcome of a TB-split search."""

    best: SpecializationPlan
    formula: SpecializationPlan
    #: measured total time per candidate boundary_tb_per_side
    measurements: dict[int, float]

    @property
    def formula_regret_percent(self) -> float:
        """How much slower the closed-form split is than the empirical
        optimum (0.0 = the formula found the optimum)."""
        best_time = self.measurements[self.best.boundary_tb_per_side]
        formula_time = self.measurements[self.formula.boundary_tb_per_side]
        if best_time == 0.0:
            return 0.0
        return (formula_time - best_time) / best_time * 100.0


def candidate_splits(tb_total: int, *, sides: int = 2,
                     max_candidates: int = 12) -> list[int]:
    """Geometrically spaced boundary block-count candidates."""
    if tb_total < sides + 1:
        raise ValueError("device too small to specialize")
    limit = (tb_total - 1) // sides
    out: list[int] = []
    candidate = 1
    while candidate <= limit and len(out) < max_candidates:
        out.append(candidate)
        candidate = max(candidate + 1, int(candidate * 1.6))
    if out[-1] != limit and len(out) < max_candidates:
        out.append(limit)
    return out


def autotune_tb_split(config, *, iterations: int = 20) -> AutotuneReport:
    """Search boundary block counts for the CPU-Free stencil variant.

    ``config`` is a :class:`repro.stencil.StencilConfig`; the search
    runs timing-only regardless of its ``with_data`` flag.  Returns the
    empirically best plan alongside the formula's plan.
    """
    from dataclasses import replace

    from repro.stencil.variants.cpufree import CPUFree

    timing_config = replace(config, with_data=False, iterations=iterations)
    probe = CPUFree(timing_config)
    tb_total = probe.coresident_blocks()
    formula_plan = probe.specialization(0)

    candidates = set(candidate_splits(tb_total))
    candidates.add(formula_plan.boundary_tb_per_side)  # always measured
    measurements: dict[int, float] = {}
    for boundary_tb in sorted(candidates):
        plan = SpecializationPlan(
            tb_total=tb_total, boundary_tb_per_side=boundary_tb, sides=2
        )

        class _Tuned(CPUFree):
            name = "cpufree"  # reuse registry name; instance-only class

            def specialization(self, rank):  # noqa: D102
                return plan

        # bypass the registry (duplicate-name guard) by instantiating
        # the subclass directly
        _Tuned.__name__ = f"CPUFreeTuned{boundary_tb}"
        result = _Tuned(timing_config).run()
        measurements[boundary_tb] = result.total_time_us

    best_boundary = min(measurements, key=lambda k: (measurements[k], k))
    best_plan = SpecializationPlan(
        tb_total=tb_total, boundary_tb_per_side=best_boundary, sides=2
    )
    return AutotuneReport(best=best_plan, formula=formula_plan,
                          measurements=measurements)
