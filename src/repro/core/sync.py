"""Device-side synchronization primitives.

:class:`GridBarrier` models cooperative-groups ``grid.sync()`` — the
device-wide barrier persistent kernels use between time steps (§3.1.2).
In the simulator a persistent kernel is a set of TB-group processes;
the barrier synchronizes those groups and charges the calibrated
``grid_sync_us``.

:class:`LocalSpinFlag` models busy-waiting on a word in local device
memory — how the paper synchronizes *co-resident kernels in separate
streams* (the alternative design of §4): "Synchronizing local
concurrent kernels, if needed, is done by busy waiting on a flag in
local device memory."
"""

from __future__ import annotations

import math
from collections.abc import Generator
from typing import Any

from repro.sim import Delay, Flag, Simulator, WaitFlag

__all__ = ["GridBarrier", "LocalSpinFlag"]


class GridBarrier:
    """Reusable barrier across the TB groups of one persistent kernel."""

    def __init__(self, sim: Simulator, parties: int, cost_us: float, lane: str = "grid") -> None:
        if parties <= 0:
            raise ValueError("parties must be positive")
        self.sim = sim
        self.parties = parties
        self.cost_us = cost_us
        self.lane = lane
        self._arrivals = Flag(sim, 0, name=f"{lane}.barrier")
        self.rounds_completed = 0

    def wait(self, extra_us: float = 0.0) -> Generator[Any, Any, None]:
        """``grid.sync()``: arrive, block until all groups arrive.

        ``extra_us`` adds per-round device-loop bookkeeping (iteration
        counter, pointer swap) on top of the barrier cost.
        """
        n = self._arrivals.add(1)
        round_no = math.ceil(n / self.parties)
        target = round_no * self.parties
        yield WaitFlag(self._arrivals, ge=target)
        if self.cost_us + extra_us > 0:
            yield Delay(self.cost_us + extra_us)
        self.rounds_completed = max(self.rounds_completed, round_no)


class LocalSpinFlag:
    """A flag word in local device memory, polled by a spinning TB.

    ``wait_until(value)`` charges poll time while blocked; ``post``
    is a plain store (release) by the producing kernel.
    """

    def __init__(self, sim: Simulator, poll_us: float, name: str = "spin") -> None:
        if poll_us < 0:
            raise ValueError("poll cost must be non-negative")
        self.sim = sim
        self.poll_us = poll_us
        self._flag = Flag(sim, 0, name=name)

    @property
    def value(self) -> int:
        return self._flag.value

    def post(self, value: int) -> None:
        """Release-store ``value`` (visible immediately on-device)."""
        self._flag.set(value)

    def wait_until(self, value: int) -> Generator[Any, Any, None]:
        """Spin until the flag reaches at least ``value``."""
        if self.poll_us > 0:
            yield Delay(self.poll_us)
        yield WaitFlag(self._flag, ge=value)
