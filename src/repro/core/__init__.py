"""The CPU-Free execution model (the paper's primary contribution).

Combines the four techniques of §3.1 into a reusable harness:

1. **Persistent kernels** — :func:`~repro.core.persistent.launch_persistent`
   launches one cooperative kernel for the whole application; the time
   loop lives on the device.
2. **Device-side synchronization** — :class:`~repro.core.sync.GridBarrier`
   models cooperative-groups ``grid.sync()`` across specialized
   thread-block groups; :class:`~repro.core.sync.LocalSpinFlag` models
   busy-waiting on a flag in local device memory (the co-resident
   two-kernel alternative of §4).
3. **Thread-block specialization** —
   :func:`~repro.core.specialization.plan_blocks` implements the §4.1.2
   work-allocation formula splitting blocks between boundary/comm work
   and inner-domain compute.
4. **GPU-initiated data movement** — kernels issue
   :mod:`repro.nvshmem` device operations directly; no host involvement
   after launch.
"""

from repro.core.autotune import AutotuneReport, autotune_tb_split, candidate_splits
from repro.core.persistent import PersistentKernel, TBGroup, launch_persistent
from repro.core.specialization import SpecializationPlan, plan_blocks
from repro.core.sync import GridBarrier, LocalSpinFlag

__all__ = [
    "AutotuneReport",
    "GridBarrier",
    "LocalSpinFlag",
    "PersistentKernel",
    "SpecializationPlan",
    "TBGroup",
    "autotune_tb_split",
    "candidate_splits",
    "launch_persistent",
    "plan_blocks",
]
