"""Thread-block specialization: splitting the device between roles.

Implements the work-allocation formula of paper §4.1.2::

    boundary_TB_num = TB_total * boundary_size
                      ---------------------------------
                      inner_size + 2 * boundary_size

    inner_TB_num = TB_total - 2 * boundary_TB_num

Boundary blocks handle halo communication plus boundary-row compute for
one side each (top/bottom in a 1-D decomposition); the rest of the
device processes the inner domain.  Splitting proportionally to work is
what keeps small/unbalanced 3D domains from being bound by the boundary
phase (§4.1.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.stacked import Stacked, members, stacked_val

__all__ = ["SpecializationPlan", "plan_blocks"]


@dataclass(frozen=True)
class SpecializationPlan:
    """How a persistent kernel's co-resident blocks are specialized."""

    tb_total: int
    boundary_tb_per_side: int
    sides: int

    def __post_init__(self) -> None:
        if self.tb_total <= 0:
            raise ValueError("tb_total must be positive")
        if self.boundary_tb_per_side < 0 or self.sides < 0:
            raise ValueError("negative block counts")
        if self.inner_tb < 1:
            raise ValueError(
                f"no blocks left for the inner domain "
                f"(total={self.tb_total}, boundary={self.boundary_tb_per_side}x{self.sides})"
            )

    @property
    def boundary_tb_total(self) -> int:
        return self.boundary_tb_per_side * self.sides

    @property
    def inner_tb(self) -> int:
        return self.tb_total - self.boundary_tb_per_side * self.sides

    @property
    def inner_fraction(self) -> float:
        """Share of device throughput available to inner compute."""
        return self.inner_tb / self.tb_total

    @property
    def boundary_fraction_per_side(self) -> float:
        """Share of device throughput for one side's boundary blocks."""
        return self.boundary_tb_per_side / self.tb_total


def plan_blocks(
    tb_total: int,
    inner_size: int,
    boundary_size: int,
    *,
    sides: int = 2,
    min_boundary_tb: int = 1,
) -> SpecializationPlan:
    """Paper §4.1.2 proportional split.

    ``inner_size`` / ``boundary_size`` are element counts of the inner
    domain and of *one* boundary region.  ``sides`` is the number of
    boundary regions (2 for a 1-D slab decomposition: top and bottom).
    A rank with no neighbors (single GPU) passes ``sides=0``.
    """
    if tb_total <= 0:
        raise ValueError("tb_total must be positive")
    if inner_size < 0 or boundary_size < 0:
        raise ValueError("sizes must be non-negative")
    if isinstance(inner_size, Stacked) or isinstance(boundary_size, Stacked):
        # Batched sweep: the round/clamp chain below branches per member
        # (small domains hit min_boundary_tb, large ones the ceil), so
        # compute the exact scalar plan per member and stack the fields.
        B = len((inner_size if isinstance(inner_size, Stacked) else boundary_size).v)
        plans = [
            plan_blocks(tb_total, inn, bnd, sides=sides,
                        min_boundary_tb=min_boundary_tb)
            for inn, bnd in zip(members(inner_size, B), members(boundary_size, B))
        ]
        per_side = [p.boundary_tb_per_side for p in plans]
        if all(b == per_side[0] for b in per_side[1:]):
            return plans[0]
        return SpecializationPlan(
            tb_total=tb_total, boundary_tb_per_side=stacked_val(per_side),
            sides=sides)
    if sides == 0 or boundary_size == 0:
        return SpecializationPlan(tb_total=tb_total, boundary_tb_per_side=0, sides=0)
    total_work = inner_size + sides * boundary_size
    # Round *up*: under-provisioning the boundary makes it the critical
    # path on unbalanced 3D domains (the failure §4.1.2 warns about).
    boundary_tb = math.ceil(tb_total * boundary_size / total_work)
    boundary_tb = max(min_boundary_tb, boundary_tb)
    # Never starve the inner domain: cap boundary blocks so at least one
    # block (and at least half the device for realistic splits) remains.
    max_boundary = (tb_total - 1) // sides
    boundary_tb = min(boundary_tb, max_boundary)
    if boundary_tb < min_boundary_tb:
        raise ValueError(
            f"cannot reserve {min_boundary_tb} boundary block(s) per side on "
            f"{tb_total} total blocks with {sides} sides"
        )
    return SpecializationPlan(tb_total=tb_total, boundary_tb_per_side=boundary_tb, sides=sides)
