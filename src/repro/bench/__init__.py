"""Benchmark harness: one experiment definition per paper figure.

:mod:`repro.bench.figures` holds the workload generators, parameter
sweeps, and headline-metric computation for every evaluation figure
(2.2, 6.1, 6.2, 6.3) plus the ablations DESIGN.md calls out;
:mod:`repro.bench.report` renders them as the paper-style tables the
``benchmarks/`` pytest targets print.
"""

from repro.bench.figures import (
    FigureData,
    Row,
    fig22_motivation,
    fig61_weak_2d,
    fig61_weak_2d_all,
    fig62_3d,
    fig63a_dace_1d,
    fig63b_dace_2d,
    weak_shape_2d,
    weak_shape_3d,
)
from repro.bench.report import render_figure

__all__ = [
    "FigureData",
    "Row",
    "fig22_motivation",
    "fig61_weak_2d",
    "fig61_weak_2d_all",
    "fig62_3d",
    "fig63a_dace_1d",
    "fig63b_dace_2d",
    "render_figure",
    "weak_shape_2d",
    "weak_shape_3d",
]
