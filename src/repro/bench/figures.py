"""Experiment definitions for every figure in the paper's evaluation.

Domain-size conventions (derived in DESIGN.md §5 / EXPERIMENTS.md):
the paper's labels (256², 2048², 8192² for 2D) are the *8-GPU global*
domain sizes — the reading consistent with its device-saturation
classification and with the reported speedups.  Weak scaling keeps a
constant per-GPU chunk of ``label² / 8`` elements and stacks chunks
along axis 0.  Strong scaling fixes the global domain.

All sweeps run the simulator in timing-only mode (``with_data=False``)
— simulated time is identical with or without the backing NumPy data
(asserted by the test suite), and correctness is covered by tests.

Every sweep point is expressed as a call to a *top-level worker
function* (``_stencil_point``, ``_dace_1d_point``, ...) mapped through
:func:`repro.perf.active_runner`, so the CLI can fan points out over
worker processes and cache their rows on disk; results are assembled
in submission order, keeping figure tables byte-identical at any
``--jobs`` setting (see docs/performance.md).
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field

from repro.hw import HGX_A100_8GPU
from repro.runtime import MultiGPUContext
from repro.sdfg.codegen import SDFGExecutor, active_fastpath_mode
from repro.sdfg.distributed import GridDecomposition2D, SlabDecomposition1D
from repro.sdfg.programs import (
    CONJUGATES_1D,
    CONJUGATES_2D,
    baseline_pipeline,
    build_jacobi_1d_sdfg,
    build_jacobi_2d_sdfg,
    cpufree_pipeline,
)
from repro.faults.profiles import active_fault_profile, get_injector
from repro.perf import active_runner
from repro.perf import warm
from repro.perf.batch import register_batchable
from repro.sim import Tracer
from repro.stencil import StencilConfig, run_variant
from repro.stencil.batch import run_batched_stencil

__all__ = [
    "DEFAULT_GPU_COUNTS",
    "FigureData",
    "Row",
    "STENCIL_VARIANTS",
    "fig22_motivation",
    "fig61_weak_2d",
    "fig61_weak_2d_all",
    "fig62_3d",
    "fig63a_dace_1d",
    "fig63b_dace_2d",
    "fig_auto_overlap",
    "fig_multinode_weak",
    "weak_shape_2d",
    "weak_shape_3d",
]

DEFAULT_GPU_COUNTS = (1, 2, 4, 8)
STENCIL_VARIANTS = (
    "baseline_copy",
    "baseline_overlap",
    "baseline_p2p",
    "baseline_nvshmem",
    "cpufree",
    "cpufree_perks",
)

#: the paper's 2D domain-size classes (8-GPU global edge length)
SIZE_CLASSES_2D = {"small": 256, "medium": 2048, "large": 8192}
#: 3D domain (8-GPU global edge length); "large" per the paper's §6.1.2
SIZE_3D = 512


@dataclass
class Row:
    """One measured point of a figure."""

    series: str
    x: int  #: GPU count
    per_iteration_us: float
    comm_us_per_iter: float = 0.0
    overlap_ratio: float = 0.0
    extra: dict = field(default_factory=dict)


@dataclass
class FigureData:
    """All rows of one (sub)figure plus derived headline metrics."""

    figure: str
    title: str
    rows: list[Row]
    headlines: dict[str, float] = field(default_factory=dict)

    def series(self, name: str) -> list[Row]:
        return [r for r in self.rows if r.series == name]

    def at(self, series: str, x: int) -> Row:
        for row in self.rows:
            if row.series == series and row.x == x:
                return row
        raise KeyError(f"no row for {series} at {x} GPUs")

    def speedup(self, ours: str, baseline: str, x: int) -> float:
        """Paper §6 speedup formula, percent."""
        t_base = self.at(baseline, x).per_iteration_us
        t_ours = self.at(ours, x).per_iteration_us
        return (t_base - t_ours) / t_base * 100.0


# ------------------------------ shapes ---------------------------------------


def weak_shape_2d(label_edge: int, gpus: int) -> tuple[int, int]:
    """Global 2D shape (with Dirichlet ring) at ``gpus`` devices for a
    size class labeled by its 8-GPU edge length."""
    rows_per_gpu = label_edge // 8
    if rows_per_gpu < 3:
        raise ValueError("size label too small for the 8-way weak-scaling chunking")
    return (rows_per_gpu * gpus + 2, label_edge + 2)


def weak_shape_3d(label_edge: int, gpus: int) -> tuple[int, int, int]:
    """Global 3D shape at ``gpus`` devices (z-axis slab decomposition)."""
    planes_per_gpu = label_edge // 8
    return (planes_per_gpu * gpus + 2, label_edge + 2, label_edge + 2)


def _stencil_point(variant: str, config: StencilConfig) -> Row:
    """Sweep worker: one stencil variant at one configuration."""
    res = run_variant(variant, config)
    return Row(
        series=variant,
        x=config.num_gpus,
        per_iteration_us=res.per_iteration_us,
        comm_us_per_iter=res.comm_time_us / config.iterations,
        overlap_ratio=res.overlap_ratio,
    )


def _stencil_group_key(args: tuple):
    """Batch-group key for :func:`_stencil_point`: everything except
    ``global_shape`` — points in one group run fused as a stack of
    domain sizes.  Faulted and data-carrying points never batch, and
    neither do hierarchical (multi-NVSwitch-domain) ones: rail links
    price transfers against in-flight occupancy on the *pilot* clock,
    which under a vector clock would misprice the other members."""
    variant, config = args
    if config.with_data or config.fault_profile is not None:
        return None
    if variant == "auto_overlap":
        # the variant picks its schedule from the global shape
        # (choose_schedule), so members of a stacked run would not
        # share one chunking — run these points individually
        return None
    if config.node.scaled_to(config.num_gpus).is_hierarchical:
        return None
    rest = tuple(
        (f.name, getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name != "global_shape"
    )
    return (variant, len(config.global_shape), rest)


def _run_stencil_group(argtuples, with_metrics: bool) -> list:
    """Fused group runner: one vector-clock simulation for the whole
    stack, demuxed into the exact per-point ``Row`` (+ dump) values."""
    variant = argtuples[0][0]
    configs = [config for _, config in argtuples]
    results, dumps = run_batched_stencil(variant, configs,
                                         with_metrics=with_metrics)
    rows = [
        Row(
            series=variant,
            x=config.num_gpus,
            per_iteration_us=res.per_iteration_us,
            comm_us_per_iter=res.comm_time_us / config.iterations,
            overlap_ratio=res.overlap_ratio,
        )
        for (_, config), res in zip(argtuples, results)
    ]
    if with_metrics:
        return list(zip(rows, dumps))
    return rows


register_batchable(_stencil_point, group_key=_stencil_group_key,
                   run=_run_stencil_group)


def _stencil_rows(
    shapes: dict[int, tuple[int, ...]],
    variants: tuple[str, ...],
    iterations: int,
    *,
    no_compute: bool = False,
) -> list[Row]:
    return _stencil_row_sets([(shapes, variants, iterations, no_compute)])[0]


def _stencil_row_sets(
    specs: list[tuple[dict[int, tuple[int, ...]], tuple[str, ...], int, bool]],
) -> list[list[Row]]:
    """Run several row sets through ONE runner map call.

    Each spec is ``(shapes, variants, iterations, no_compute)``; the
    concatenated task list is mapped once and sliced back per spec.
    One map call means the batch scheduler sees every point of every
    set at once — points that differ only in ``global_shape`` (the same
    variant at several domain sizes) group into one fused simulation.
    Row values and merged metrics are unchanged: map preserves
    submission order, so the slices equal per-spec map calls.
    """
    tasks: list[tuple[str, StencilConfig]] = []
    bounds: list[tuple[int, int]] = []
    for shapes, variants, iterations, no_compute in specs:
        start = len(tasks)
        tasks.extend(
            (variant, StencilConfig(
                global_shape=shape, num_gpus=gpus, iterations=iterations,
                with_data=False, no_compute=no_compute,
            ))
            for gpus, shape in shapes.items()
            for variant in variants
        )
        bounds.append((start, len(tasks)))
    rows = active_runner().map(_stencil_point, tasks)
    return [rows[a:b] for a, b in bounds]


# ------------------------------ Figure 2.2 ---------------------------------------


def _fig22b_point(
    variant: str,
    shape8: tuple[int, ...],
    iterations: int,
    fault_profile: str | None = None,
) -> Row:
    """Sweep worker: full + no-compute run of one variant at 8 GPUs.

    ``fault_profile`` travels in the argument tuple (not as ambient
    state): it must reach pool workers and be part of the cache key.
    """
    full = run_variant(variant, StencilConfig(
        global_shape=shape8, num_gpus=8, iterations=iterations, with_data=False,
        fault_profile=fault_profile))
    nocomp = run_variant(variant, StencilConfig(
        global_shape=shape8, num_gpus=8, iterations=iterations,
        with_data=False, no_compute=True, fault_profile=fault_profile))
    comm_fraction = min(1.0, nocomp.total_time_us / full.total_time_us)
    return Row(
        series=variant, x=8,
        per_iteration_us=full.per_iteration_us,
        comm_us_per_iter=nocomp.per_iteration_us,
        overlap_ratio=full.overlap_ratio,
        extra={"comm_fraction": comm_fraction},
    )


def fig22_motivation(iterations: int = 40) -> tuple[FigureData, FigureData]:
    """Fig 2.2: (a) pure communication/synchronization overhead with no
    computation, 2-8 GPUs; (b) communication fraction and overlap of
    the CPU-controlled overlapping stencil versus CPU-Free."""
    shapes = {g: weak_shape_2d(SIZE_CLASSES_2D["small"], g) for g in (2, 4, 8)}
    a_rows = _stencil_rows(shapes, ("baseline_overlap", "cpufree"), iterations,
                           no_compute=True)
    fig_a = FigureData("2.2a", "Pure communication overhead (no compute)", a_rows)

    shape8 = weak_shape_2d(SIZE_CLASSES_2D["small"], 8)
    variants = ("baseline_overlap", "cpufree")
    b_rows = active_runner().map(
        _fig22b_point,
        [(variant, shape8, iterations, active_fault_profile()) for variant in variants])
    headlines: dict[str, float] = {}
    for variant, row in zip(variants, b_rows):
        headlines[f"{variant}_comm_fraction"] = row.extra["comm_fraction"]
        headlines[f"{variant}_overlap_ratio"] = row.overlap_ratio
    fig_b = FigureData("2.2b", "Communication fraction and overlap at 8 GPUs",
                       b_rows, headlines)
    return fig_a, fig_b


# ------------------------------ Figure 6.1 ---------------------------------------


def fig61_weak_2d(
    size: str,
    gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
    iterations: int = 40,
    variants: tuple[str, ...] = STENCIL_VARIANTS,
) -> FigureData:
    """Fig 6.1: 2D Jacobi weak scaling for one size class."""
    return fig61_weak_2d_all((size,), gpu_counts, iterations, variants)[0]


def fig61_weak_2d_all(
    sizes: tuple[str, ...] = ("small", "medium", "large"),
    gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
    iterations: int = 40,
    variants: tuple[str, ...] = STENCIL_VARIANTS,
) -> list[FigureData]:
    """Fig 6.1 across size classes, swept in one runner map so each
    (variant, GPU count) runs its sizes as one fused batch."""
    specs = [
        ({g: weak_shape_2d(SIZE_CLASSES_2D[s], g) for g in gpu_counts},
         variants, iterations, False)
        for s in sizes
    ]
    row_sets = _stencil_row_sets(specs)
    figs = []
    for size, rows in zip(sizes, row_sets):
        label_edge = SIZE_CLASSES_2D[size]
        fig = FigureData(
            "6.1", f"2D Jacobi weak scaling ({size}: {label_edge}^2 at 8 GPUs)",
            rows)
        top = max(gpu_counts)
        fig.headlines = {
            "speedup_vs_nvshmem_%": fig.speedup("cpufree", "baseline_nvshmem", top),
            "speedup_vs_copy_%": fig.speedup("cpufree", "baseline_copy", top),
            "speedup_vs_overlap_%": fig.speedup("cpufree", "baseline_overlap", top),
            "perks_vs_best_baseline_%": _perks_vs_best(fig, variants, top),
            "perks_weak_scaling_dropoff_%": _weak_dropoff(fig, "cpufree_perks", gpu_counts),
        }
        figs.append(fig)
    return figs


def _perks_vs_best(fig: FigureData, variants: tuple[str, ...], x: int) -> float:
    baselines = [v for v in variants if v.startswith("baseline")]
    best = min(baselines, key=lambda v: fig.at(v, x).per_iteration_us)
    return fig.speedup("cpufree_perks", best, x)


def _weak_dropoff(fig: FigureData, series: str, gpu_counts: tuple[int, ...]) -> float:
    """Weak-scaling dropoff: per-iteration growth from 1 to max GPUs."""
    lo, hi = min(gpu_counts), max(gpu_counts)
    t1 = fig.at(series, lo).per_iteration_us
    tn = fig.at(series, hi).per_iteration_us
    return (tn - t1) / t1 * 100.0


# --------------------------- Multi-node scaling -----------------------------


def fig_multinode_weak(
    size: str = "small",
    gpu_counts: tuple[int, ...] = (8, 16, 32, 64),
    iterations: int = 10,
    variants: tuple[str, ...] = ("baseline_nvshmem", "cpufree"),
) -> FigureData:
    """Multi-node extension (beyond the paper's single-node testbed):
    2D Jacobi weak scaling across NVSwitch domains.

    Counts above 8 GPUs scale the HGX node hierarchically — 8-GPU
    NVSwitch domains joined by NIC rails — so boundary halo exchanges
    cross rails through the proxy path while interior ones stay on
    NVLink.  The headline is the per-variant weak-scaling dropoff from
    one domain to the largest count: how much of the single-node curve
    survives the rails.  Not part of the default report (the committed
    golden pins the paper's figures); run it by name:
    ``python -m repro.bench multinode``.
    """
    shapes = {g: weak_shape_2d(SIZE_CLASSES_2D[size], g) for g in gpu_counts}
    rows = _stencil_rows(shapes, variants, iterations)
    label_edge = SIZE_CLASSES_2D[size]
    fig = FigureData(
        "MN", f"Multi-node 2D Jacobi weak scaling ({size}: {label_edge}^2 at 8 GPUs)",
        rows)
    fig.headlines = {
        f"{variant}_dropoff_%": _weak_dropoff(fig, variant, gpu_counts)
        for variant in variants
    }
    top = max(gpu_counts)
    if "cpufree" in variants and "baseline_nvshmem" in variants:
        fig.headlines["speedup_vs_nvshmem_%"] = fig.speedup(
            "cpufree", "baseline_nvshmem", top)
    return fig


# --------------------------- Auto-overlap win/loss ---------------------------


def fig_auto_overlap(
    sizes: tuple[str, ...] = ("small", "medium", "large"),
    gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
    iterations: int = 40,
) -> FigureData:
    """Compiler-derived ``auto_overlap`` vs hand-tuned ``cpufree``.

    One row pair per (size, gpus) point of the figure suite; the
    headlines are the win/loss tally (a win is a strictly faster
    per-iteration time; ``chunks=1`` schedules reuse cpufree's body
    verbatim, so those points tie bit-exactly).  Opt-in (run by name:
    ``python -m repro.bench auto_overlap``) so the committed golden
    report is unaffected; ``repro.tune --winloss-out`` emits the same
    comparison as byte-stable JSON.
    """
    variants = ("cpufree", "auto_overlap")
    specs = [
        ({g: weak_shape_2d(SIZE_CLASSES_2D[s], g) for g in gpu_counts},
         variants, iterations, False)
        for s in sizes
    ]
    row_sets = _stencil_row_sets(specs)
    rows: list[Row] = []
    wins = ties = losses = 0
    for size, srows in zip(sizes, row_sets):
        for row in srows:
            row.series = f"{row.series}/{size}"
            rows.append(row)
        pairs = iter(srows)
        for cf, ao in zip(pairs, pairs):
            eps = 1e-9 * cf.per_iteration_us
            if ao.per_iteration_us < cf.per_iteration_us - eps:
                wins += 1
            elif ao.per_iteration_us <= cf.per_iteration_us + eps:
                ties += 1
            else:
                losses += 1
    fig = FigureData(
        "AO", "Auto-overlap (compiler schedule) vs hand-tuned cpufree", rows)
    total = wins + ties + losses
    fig.headlines = {
        "wins": float(wins),
        "ties": float(ties),
        "losses": float(losses),
        "win_or_tie_fraction": (wins + ties) / total if total else 0.0,
    }
    return fig


# ------------------------------ Figure 6.2 ---------------------------------------


def fig62_3d(
    gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
    iterations: int = 30,
    variants: tuple[str, ...] = STENCIL_VARIANTS,
) -> dict[str, FigureData]:
    """Fig 6.2: 3D Jacobi — weak scaling, weak-scaling no-compute,
    strong scaling, strong-scaling no-compute."""
    weak_shapes = {g: weak_shape_3d(SIZE_3D, g) for g in gpu_counts}
    strong_shape = weak_shape_3d(SIZE_3D, 8)
    strong_shapes = {g: strong_shape for g in gpu_counts}

    # one map call for all four row sets: each (variant, gpus,
    # no_compute) runs its weak and strong shapes as one fused batch
    weak, weak_nc, strong, strong_nc = _stencil_row_sets([
        (weak_shapes, variants, iterations, False),
        (weak_shapes, variants, iterations, True),
        (strong_shapes, variants, iterations, False),
        (strong_shapes, variants, iterations, True),
    ])
    out: dict[str, FigureData] = {}
    out["weak"] = FigureData("6.2-weak", "3D Jacobi weak scaling", weak)
    out["weak_nocompute"] = FigureData(
        "6.2-weak-nc", "3D Jacobi weak scaling, no compute (comm latency)",
        weak_nc)
    out["strong"] = FigureData(
        "6.2-strong", "3D Jacobi strong scaling (fixed 512^3 domain)", strong)
    out["strong_nocompute"] = FigureData(
        "6.2-strong-nc", "3D Jacobi strong scaling, no compute", strong_nc)

    top = max(gpu_counts)
    nc = out["weak_nocompute"]
    host_controlled = [v for v in variants
                       if v.startswith("baseline") and v != "baseline_nvshmem"]
    best_host = min(host_controlled, key=lambda v: nc.at(v, top).per_iteration_us)
    nc.headlines = {
        "comm_improvement_vs_best_host_controlled_%": nc.speedup("cpufree", best_host, top),
        "comm_improvement_vs_nvshmem_%": nc.speedup("cpufree", "baseline_nvshmem", top),
    }
    strong = out["strong_nocompute"]
    # flatness measured from 2 GPUs (a single GPU has no communication)
    lo = min(g for g in gpu_counts if g >= 2)
    strong.headlines = {
        "cpufree_growth_%": (strong.at("cpufree", top).per_iteration_us
                             / strong.at("cpufree", lo).per_iteration_us - 1) * 100,
        "copy_growth_%": (strong.at("baseline_copy", top).per_iteration_us
                          / strong.at("baseline_copy", lo).per_iteration_us - 1) * 100,
    }
    return out


# ------------------------------ Figure 6.3 ---------------------------------------


def _pipelined_sdfg(build, kind, conjugates):
    """Build + transform one DaCe program (the warm-start template)."""
    sdfg = build()
    if kind == "baseline":
        return baseline_pipeline(sdfg)
    return cpufree_pipeline(sdfg, conjugates)


def _run_dace(build, pipeline_args, decomp_args, ranks: int,
              fault_profile: str | None = None, fastpath: str = "vector"):
    kind, conjugates = pipeline_args
    # The transformed graph depends only on (program, pipeline), never
    # on the GPU count or fault profile, so one worker process builds
    # it once and every later point starts from a deep copy.  The copy
    # matters for determinism: executor plan attachment (and its
    # hit/miss metrics) must happen freshly per point, so runs are
    # byte-identical whether the template was warm or cold.  Tasklet
    # *compiles* still amortize through the content-keyed code cache
    # in repro.sdfg.codegen.fastpath, which is metric-invisible.
    sdfg = warm.warm(
        ("dace-sdfg", build.__module__, build.__qualname__, kind),
        lambda: _pipelined_sdfg(build, kind, conjugates),
        copy=copy.deepcopy)
    ctx = MultiGPUContext(HGX_A100_8GPU.scaled_to(ranks), tracer=Tracer(),
                          faults=get_injector(fault_profile))
    executor = SDFGExecutor(sdfg, ctx, with_data=False, fastpath=fastpath)
    return executor.run(decomp_args)


def _dace_1d_point(gpus: int, kind: str, per_gpu_n: int, tsteps: int,
                   fault_profile: str | None = None,
                   fastpath: str = "vector") -> Row:
    """Sweep worker: one (GPU count, pipeline) point of Fig 6.3a.

    Timing-only runs need just the per-rank scalar parameters, so the
    (huge) global domain is never allocated.
    """
    decomp = SlabDecomposition1D(per_gpu_n * gpus, gpus)
    report = _run_dace(build_jacobi_1d_sdfg, (kind, CONJUGATES_1D),
                       decomp.rank_params(tsteps), gpus, fault_profile, fastpath)
    return Row(
        series=f"dace_{kind}", x=gpus,
        per_iteration_us=report.per_iteration_us,
        comm_us_per_iter=report.comm_time_us / report.iterations,
    )


def fig63a_dace_1d(
    gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
    per_gpu_n: int = 1_000_000,
    tsteps: int = 11,
) -> FigureData:
    """Fig 6.3a: DaCe Jacobi 1D, discrete MPI baseline vs generated
    CPU-Free, weak scaling (constant elements per GPU)."""
    tasks = [(gpus, kind, per_gpu_n, tsteps, active_fault_profile(),
              active_fastpath_mode())
             for gpus in gpu_counts for kind in ("baseline", "cpufree")]
    rows = active_runner().map(_dace_1d_point, tasks)
    fig = FigureData("6.3a", "DaCe Jacobi 1D: baseline vs CPU-Free", rows)
    top = max(gpu_counts)
    base, free = fig.at("dace_baseline", top), fig.at("dace_cpufree", top)
    fig.headlines = {
        "total_improvement_%": fig.speedup("dace_cpufree", "dace_baseline", top),
        "comm_improvement_%": (base.comm_us_per_iter - free.comm_us_per_iter)
        / base.comm_us_per_iter * 100.0,
    }
    return fig


def _fig63b_domain(base_edge: int, gpus: int) -> tuple[int, int]:
    """Global interior for Fig 6.3b: doubles axis-0-first per GPU doubling."""
    gy, gx = base_edge, base_edge
    q, axis = gpus, 0
    while q > 1:
        if axis == 0:
            gy *= 2
        else:
            gx *= 2
        axis ^= 1
        q //= 2
    return gy, gx


def _dace_2d_point(gpus: int, kind: str, base_edge: int, tsteps: int,
                   fault_profile: str | None = None,
                   fastpath: str = "vector") -> Row:
    """Sweep worker: one (GPU count, pipeline) point of Fig 6.3b."""
    gy, gx = _fig63b_domain(base_edge, gpus)
    decomp = GridDecomposition2D(gy, gx, gpus)
    report = _run_dace(build_jacobi_2d_sdfg, (kind, CONJUGATES_2D),
                       decomp.rank_params(tsteps), gpus, fault_profile, fastpath)
    return Row(
        series=f"dace_{kind}", x=gpus,
        per_iteration_us=report.per_iteration_us,
        comm_us_per_iter=report.comm_time_us / report.iterations,
        extra={"tile": decomp.tile, "grid": decomp.grid},
    )


def fig63b_dace_2d(
    gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
    base_edge: int = 2048,
    tsteps: int = 6,
) -> FigureData:
    """Fig 6.3b: DaCe Jacobi 2D with strided east/west halos.

    The global domain grows axis-0-first while the process grid is
    wide (py <= px), so P = 2 and 8 produce rectangular tiles with
    long strided columns — the baseline's unbalanced-partition bump.
    """
    tasks = [(gpus, kind, base_edge, tsteps, active_fault_profile(),
              active_fastpath_mode())
             for gpus in gpu_counts for kind in ("baseline", "cpufree")]
    rows = active_runner().map(_dace_2d_point, tasks)
    fig = FigureData("6.3b", "DaCe Jacobi 2D: baseline vs CPU-Free (strided halos)", rows)
    top, lo = max(gpu_counts), min(gpu_counts)
    base = fig.at("dace_baseline", top)
    fig.headlines = {
        "total_improvement_%": fig.speedup("dace_cpufree", "dace_baseline", top),
        "baseline_comm_fraction_%": min(
            100.0, base.comm_us_per_iter / base.per_iteration_us * 100.0),
        "cpufree_weak_scaling_efficiency_%": (
            fig.at("dace_cpufree", lo).per_iteration_us
            / fig.at("dace_cpufree", top).per_iteration_us * 100.0),
    }
    return fig
