"""Command-line entry point: regenerate every paper figure.

Usage::

    python -m repro.bench                 # all figures, print tables
    python -m repro.bench 6.1 6.3b        # a subset
    python -m repro.bench --out report.txt
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import (
    fig22_motivation,
    fig61_weak_2d,
    fig62_3d,
    fig63a_dace_1d,
    fig63b_dace_2d,
)
from repro.bench.report import render_figure


def _run_22():
    a, b = fig22_motivation()
    return [a, b]


def _run_61():
    return [fig61_weak_2d(size) for size in ("small", "medium", "large")]


def _run_62():
    figs = fig62_3d()
    return [figs[k] for k in ("weak", "weak_nocompute", "strong", "strong_nocompute")]


FIGURES = {
    "2.2": _run_22,
    "6.1": _run_61,
    "6.2": _run_62,
    "6.3a": lambda: [fig63a_dace_1d()],
    "6.3b": lambda: [fig63b_dace_2d()],
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures on the simulator.",
    )
    parser.add_argument("figures", nargs="*", default=[],
                        help=f"figure ids to run (default: all of {sorted(FIGURES)})")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--paper", action="store_true",
                        help="evaluate every paper claim and print the verdict table")
    args = parser.parse_args(argv)

    if args.paper:
        from repro.bench.paper import evaluate_claims, render_claims

        report = render_claims(evaluate_claims())
        print(report)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(report)
        return 0

    selected = args.figures or sorted(FIGURES)
    unknown = [f for f in selected if f not in FIGURES]
    if unknown:
        parser.error(f"unknown figure id(s) {unknown}; choose from {sorted(FIGURES)}")

    sections: list[str] = []
    for figure_id in selected:
        started = time.perf_counter()
        for fig in FIGURES[figure_id]():
            sections.append(render_figure(fig))
        elapsed = time.perf_counter() - started
        sections.append(f"(figure {figure_id} regenerated in {elapsed:.1f}s wall time)")
        sections.append("")

    report = "\n".join(sections)
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
