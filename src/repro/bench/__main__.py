"""Command-line entry point: regenerate every paper figure.

Usage::

    python -m repro.bench                 # all figures, print tables
    python -m repro.bench 6.1 6.3b        # a subset
    python -m repro.bench --out report.txt
    python -m repro.bench --jobs 4        # fan sweep points out over processes
    python -m repro.bench --no-cache      # force recomputation
    python -m repro.bench --profile       # cProfile the run (implies --jobs 1)

Sweep points run through :mod:`repro.perf`: independent figure
configurations fan out over worker processes (``--jobs``) and replay
from an on-disk result cache keyed by a content hash of configuration
+ simulator sources.  The report body is byte-identical at any
``--jobs`` setting; wall-clock timings and cache statistics print to
stdout only, never into ``--out``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import nullcontext

from repro.bench.figures import (
    DEFAULT_GPU_COUNTS,
    STENCIL_VARIANTS,
    fig22_motivation,
    fig61_weak_2d_all,
    fig62_3d,
    fig63a_dace_1d,
    fig63b_dace_2d,
    fig_auto_overlap,
    fig_multinode_weak,
)
from repro.bench.report import history_fields, render_figure
from repro.cliutil import cli_entry
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.perf import ResultCache, SweepManifest, SweepRunner, use_runner
from repro.perf.cache import DEFAULT_CACHE_DIR
from repro.perf.manifest import SweepJournal


def _run_22():
    a, b = fig22_motivation()
    return [a, b]


def _run_61():
    return fig61_weak_2d_all(("small", "medium", "large"))


def _run_62():
    figs = fig62_3d()
    return [figs[k] for k in ("weak", "weak_nocompute", "strong", "strong_nocompute")]


FIGURES = {
    "2.2": _run_22,
    "6.1": _run_61,
    "6.2": _run_62,
    "6.3a": lambda: [fig63a_dace_1d()],
    "6.3b": lambda: [fig63b_dace_2d()],
}

#: opt-in figures, run only when named explicitly — kept out of the
#: default selection so the committed golden report (which pins the
#: paper's figure set byte-for-byte) is unaffected
EXTRA_FIGURES = {
    "multinode": lambda: [fig_multinode_weak()],
    "auto_overlap": lambda: [fig_auto_overlap()],
}

#: static sweep-shape facts per figure id, for --list-figures: the
#: variants (series) each figure runs and its sweep-point count.  Kept
#: in lockstep with the figure definitions in repro.bench.figures —
#: tests/bench pins the counts against the definitions' constants.
_G = len(DEFAULT_GPU_COUNTS)
_V = len(STENCIL_VARIANTS)
FIGURE_CATALOG = {
    "2.2": ("Motivation: comm overhead + comm fraction at 8 GPUs",
            ("baseline_overlap", "cpufree"), 3 * 2 + 2),
    "6.1": ("2D Jacobi weak scaling, 3 size classes",
            STENCIL_VARIANTS, 3 * _G * _V),
    "6.2": ("3D Jacobi weak+strong scaling, each with no-compute",
            STENCIL_VARIANTS, 4 * _G * _V),
    "6.3a": ("DaCe Jacobi 1D: baseline vs generated CPU-Free",
             ("dace_baseline", "dace_cpufree"), _G * 2),
    "6.3b": ("DaCe Jacobi 2D with strided halos",
             ("dace_baseline", "dace_cpufree"), _G * 2),
    "multinode": ("2D weak scaling across NVSwitch domains (8-64 GPUs)",
                  ("baseline_nvshmem", "cpufree"), 4 * 2),
    "auto_overlap": ("Auto-overlap compiler schedule vs cpufree win/loss",
                     ("cpufree", "auto_overlap"), 3 * _G * 2),
}


def _list_figures() -> str:
    """Render the figure catalog (no sweeps run)."""
    lines = ["figure        points  variants",
             "------        ------  --------"]
    for figure_id in [*sorted(FIGURES), *sorted(EXTRA_FIGURES)]:
        title, variants, points = FIGURE_CATALOG[figure_id]
        extra = "*" if figure_id in EXTRA_FIGURES else ""
        lines.append(f"{figure_id + extra:<14}{points:>6}  {', '.join(variants)}")
        lines.append(f"              {'':>6}  {title}")
    lines.append("")
    lines.append("(* = opt-in figure, runs only when named explicitly)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures on the simulator.",
    )
    parser.add_argument("figures", nargs="*", default=[],
                        help=f"figure ids to run (default: all of {sorted(FIGURES)})")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--list-figures", action="store_true",
                        help="list every figure id (including opt-in extras) "
                             "with its variants and sweep-point count, "
                             "without running anything")
    parser.add_argument("--paper", action="store_true",
                        help="evaluate every paper claim and print the verdict table")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for sweep points (default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result cache")
    parser.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR,
                        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--profile", nargs="?", const="repro-bench.prof",
                        default=None, metavar="PATH",
                        help="cProfile the run and dump stats to PATH "
                             "(default: repro-bench.prof); forces --jobs 1")
    parser.add_argument("--profile-out", type=str, default=None, metavar="PATH",
                        help="write per-point cProfile stats (sorted by "
                             "cumulative time) to PATH, one section per "
                             "computed sweep point; forces --jobs 1")
    parser.add_argument("--save-manifest", type=str, default=None, metavar="PATH",
                        help="record every sweep point's cache key to PATH "
                             "(a replay baseline for --changed-only); "
                             "requires the cache")
    parser.add_argument("--changed-only", type=str, default=None, metavar="PATH",
                        help="compare each point's cache key against the "
                             "manifest at PATH: unchanged points replay from "
                             "the cache, only changed/new points recompute "
                             "(a summary prints to stdout); requires the cache")
    parser.add_argument("--resume", type=str, default=None, metavar="PATH",
                        help="journal completed sweep points to PATH as they "
                             "finish and, when PATH already exists, replay the "
                             "journaled points from the cache — a sweep killed "
                             "mid-run loses at most the in-flight points; "
                             "requires the cache")
    parser.add_argument("--batch", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="fuse compatible cache-miss sweep points into one "
                             "vector-clock simulation (default on; --no-batch "
                             "forces the per-point path — output and cache "
                             "entries are byte-identical either way)")
    parser.add_argument("--prune-stale", type=str, default=None, metavar="PATH",
                        help="after the run, diff the recorded point keys "
                             "against the manifest at PATH and evict cache "
                             "entries whose key changed or whose point "
                             "disappeared (a summary prints to stdout); "
                             "requires the cache")
    parser.add_argument("--metrics-out", type=str, default=None, metavar="PATH",
                        help="collect observability metrics across the run and "
                             "write the registry dump (JSON) to PATH; the dump "
                             "is byte-identical at any --jobs setting")
    parser.add_argument("--fastpath", type=str, default="vector",
                        choices=("vector", "scalar", "validate"),
                        help="tasklet execution mode for SDFG figures "
                             "(scalar/validate are bit-identical to vector "
                             "but slower; each mode keys its own cache "
                             "entries)")
    parser.add_argument("--fault-profile", type=str, default=None, metavar="NAME",
                        help="run every figure under this fault profile "
                             "(e.g. transient or transient@7); the profile is "
                             "recorded in the metrics dump and in the report "
                             "header")
    parser.add_argument("--history", type=str, default=None, metavar="PATH",
                        help="append one perf-history record per sweep point "
                             "to this JSONL file (read back by "
                             "`python -m repro.obs regress`); needs "
                             "--run-label")
    parser.add_argument("--run-label", type=str, default=None, metavar="NAME",
                        help="history run label for this invocation (e.g. a "
                             "git SHA, or base/check in CI)")
    parser.add_argument("--progress", action="store_true",
                        help="narrate sweep progress on stderr with a running "
                             "counter and, when --history has prior runs, an "
                             "ETA from per-point median wall times")
    parser.add_argument("--progress-out", type=str, default=None, metavar="PATH",
                        help="stream machine-readable progress events (one "
                             "JSON object per line) to PATH")
    args = parser.parse_args(argv)

    if args.list_figures:
        print(_list_figures())
        return 0

    if args.paper:
        from repro.bench.paper import evaluate_claims, render_claims

        report = render_claims(evaluate_claims())
        print(report)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(report)
        return 0

    all_figures = {**FIGURES, **EXTRA_FIGURES}
    selected = args.figures or sorted(FIGURES)
    unknown = [f for f in selected if f not in all_figures]
    if unknown:
        parser.error(f"unknown figure id(s) {unknown}; "
                     f"choose from {sorted(all_figures)}")

    jobs = 1 if (args.profile or args.profile_out) else args.jobs
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is None and (args.save_manifest or args.changed_only
                          or args.prune_stale or args.resume):
        parser.error("--save-manifest/--changed-only/--prune-stale/--resume "
                     "need the result cache; drop --no-cache")
    if args.resume and args.changed_only:
        parser.error("--resume and --changed-only both pick the replay "
                     "baseline; use one or the other")
    manifest = (SweepManifest()
                if args.save_manifest or args.prune_stale else None)
    baseline = None
    if args.changed_only:
        try:
            baseline = SweepManifest.load(args.changed_only)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"--changed-only: {exc}")
    journal = None
    journal_corrupt: list[tuple[int, str]] = []
    resumed_points = 0
    if args.resume:
        import os.path

        if os.path.exists(args.resume):
            # a prior (possibly killed) run left a journal: its intact
            # lines become the replay baseline, torn lines just recompute
            baseline, journal_corrupt = SweepJournal.load(args.resume)
            resumed_points = len(baseline)
        journal = SweepJournal(args.resume)
    prune_baseline = None
    if args.prune_stale:
        try:
            prune_baseline = SweepManifest.load(args.prune_stale)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"--prune-stale: {exc}")
    if args.history and not args.run_label:
        parser.error("--history needs --run-label to name this run's records")
    sinks = []
    progress_fh = None
    history_sink = None
    if args.progress_out:
        from repro.obs.progress import JsonlProgress

        progress_fh = open(args.progress_out, "w")
        sinks.append(JsonlProgress(progress_fh))
    if args.progress:
        from repro.obs.history import HistoryStore
        from repro.obs.progress import TtyProgress

        medians = (HistoryStore(args.history).wall_medians()
                   if args.history else None)
        sinks.append(TtyProgress(eta_medians=medians))
    if args.history:
        from repro.obs.history import HistoryStore
        from repro.obs.progress import HistorySink

        history_sink = HistorySink(HistoryStore(args.history), args.run_label,
                                   profile=args.fault_profile,
                                   extract=history_fields)
        sinks.append(history_sink)
    progress = None
    if sinks:
        from repro.obs.progress import MultiSink

        progress = MultiSink(*sinks)
    profile_sink: list[tuple[str, str]] | None = [] if args.profile_out else None
    runner = SweepRunner(jobs=jobs, cache=cache, manifest=manifest,
                         baseline=baseline, profile_sink=profile_sink,
                         batch=args.batch, progress=progress, journal=journal)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    registry = MetricsRegistry() if args.metrics_out else None
    sections: list[str] = []
    timings: list[tuple[str, float]] = []
    if args.fault_profile is not None:
        # the header is part of the report body so a faulted report can
        # never be mistaken for (or diffed against) a clean one
        sections.append(f"[fault profile: {args.fault_profile}]")
        sections.append("")
        if registry is not None:
            registry.gauge("bench.fault_profile", profile=args.fault_profile).set(1)
    from repro.faults.profiles import use_fault_profile
    from repro.sdfg.codegen import use_fastpath_mode

    with use_fault_profile(args.fault_profile), use_fastpath_mode(args.fastpath), \
            use_runner(runner), (
            use_metrics(registry) if registry is not None else nullcontext()):
        if profiler is not None:
            profiler.enable()
        for figure_id in selected:
            started = time.perf_counter()
            for fig in all_figures[figure_id]():
                sections.append(render_figure(fig))
                sections.append("")
            timings.append((figure_id, time.perf_counter() - started))
        if profiler is not None:
            profiler.disable()

    report = "\n".join(sections)
    print(report)
    # timing / cache lines go to stdout only: the report body must stay
    # byte-identical across --jobs settings and cache hits vs misses
    for figure_id, elapsed in timings:
        print(f"(figure {figure_id} regenerated in {elapsed:.1f}s wall time)")
    if cache is not None:
        print(f"(sweep cache: {runner.hits} hit(s), {runner.misses} miss(es) "
              f"in {args.cache_dir})")
    if args.batch:
        print(f"(batched execution: {runner.batch_points} point(s) fused into "
              f"{runner.batch_groups} run(s), {runner.batch_fallbacks} "
              f"fallback(s))")
    if args.changed_only:
        print(f"(changed-only vs {args.changed_only}: {runner.replayed} "
              f"replayed, {runner.changed} changed, {runner.added} new, "
              f"{runner.stale} stale)")
    if journal is not None:
        journal.close()
        torn = (f", {len(journal_corrupt)} torn journal line(s) skipped"
                if journal_corrupt else "")
        print(f"(resume journal {args.resume}: {resumed_points} point(s) "
              f"from the previous run, {runner.replayed} replayed from "
              f"cache{torn})")
    if cache is not None and cache.quarantined:
        for key, reason in cache.quarantined:
            print(f"(cache entry {key[:12]}… quarantined: {reason} — "
                  f"recomputed)")
    if runner.quarantined:
        for point in runner.quarantined:
            print(f"(sweep point quarantined after {point.attempts} "
                  f"attempt(s): {point.identity} — {point.reason})")
    if prune_baseline is not None:
        diff = manifest.diff(prune_baseline)
        live = set(manifest.entries.values())
        stale_keys = sorted(
            {prune_baseline.entries[i] for i in diff.changed + diff.removed}
            - live)
        evicted = sum(cache.evict(k) for k in stale_keys)
        print(f"(prune-stale vs {args.prune_stale}: {evicted} dead cache "
              f"entr{'y' if evicted == 1 else 'ies'} evicted — "
              f"{len(diff.changed)} changed, {len(diff.removed)} removed)")
    if args.save_manifest:
        manifest.save(args.save_manifest)
        print(f"({len(manifest)} point key(s) recorded to {args.save_manifest})")
    if profile_sink is not None:
        with open(args.profile_out, "w") as fh:
            for identity, text in profile_sink:
                fh.write(f"==== {identity}\n{text}\n")
        print(f"(per-point profiles for {len(profile_sink)} computed point(s) "
              f"written to {args.profile_out})")
    if profiler is not None:
        import pstats

        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        print(f"(profile written to {args.profile}; top functions:)")
        stats.print_stats(10)
    if progress_fh is not None:
        progress_fh.close()
        print(f"(progress events streamed to {args.progress_out})")
    if history_sink is not None:
        print(f"({history_sink.recorded} history record(s) appended to "
              f"{args.history} as run {args.run_label!r})")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"report written to {args.out}")
    if registry is not None:
        with open(args.metrics_out, "w") as fh:
            fh.write(registry.to_json())
        print(f"({len(registry)} metric series written to {args.metrics_out})")
    return 0


if __name__ == "__main__":
    sys.exit(cli_entry(main))
