"""Paper headline claims and automated paper-vs-measured comparison.

Encodes every quantitative claim from the paper's evaluation prose as
a :class:`Claim` with a tolerance band, runs the corresponding
experiment, and emits a verdict table — the automated core of
EXPERIMENTS.md.  ``python -m repro.bench --paper`` prints it.

Tolerances encode the reproduction contract: we match *shape* (sign,
ordering, rough factor), not testbed-absolute numbers, so bands are
generous but directional — a claim fails if the effect disappears or
flips, not if it is 10 points off.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.bench.figures import (
    fig22_motivation,
    fig61_weak_2d,
    fig62_3d,
    fig63a_dace_1d,
    fig63b_dace_2d,
)

__all__ = ["Claim", "ClaimResult", "evaluate_claims", "render_claims", "PAPER_CLAIMS"]


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper."""

    figure: str
    description: str
    paper_value: float
    unit: str
    lo: float        #: acceptance band (inclusive)
    hi: float
    extract: Callable[[dict], float]


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    measured: float

    @property
    def ok(self) -> bool:
        return self.claim.lo <= self.measured <= self.claim.hi


def _figures(iterations: int = 30) -> dict:
    """Run every experiment once; claims extract from this dict."""
    fig22a, fig22b = fig22_motivation(iterations)
    return {
        "2.2a": fig22a,
        "2.2b": fig22b,
        "6.1-small": fig61_weak_2d("small", iterations=iterations),
        "6.1-medium": fig61_weak_2d("medium", iterations=iterations),
        "6.1-large": fig61_weak_2d("large", iterations=iterations),
        "6.2": fig62_3d(iterations=iterations),
        "6.3a": fig63a_dace_1d(),
        "6.3b": fig63b_dace_2d(),
    }


PAPER_CLAIMS: tuple[Claim, ...] = (
    Claim("2.2b", "communication fraction of CPU-controlled execution",
          96.0, "%", 85.0, 100.0,
          lambda f: f["2.2b"].headlines["baseline_overlap_comm_fraction"] * 100),
    Claim("6.1", "small: CPU-Free speedup vs Baseline NVSHMEM at 8 GPUs",
          41.6, "%", 25.0, 70.0,
          lambda f: f["6.1-small"].headlines["speedup_vs_nvshmem_%"]),
    Claim("6.1", "small: CPU-Free speedup vs Baseline Copy at 8 GPUs",
          96.2, "%", 88.0, 100.0,
          lambda f: f["6.1-small"].headlines["speedup_vs_copy_%"]),
    Claim("6.1", "medium: CPU-Free speedup vs Baseline NVSHMEM at 8 GPUs",
          48.2, "%", 15.0, 70.0,
          lambda f: f["6.1-medium"].headlines["speedup_vs_nvshmem_%"]),
    Claim("6.1", "medium: CPU-Free speedup vs Baseline Overlap at 8 GPUs",
          95.7, "%", 85.0, 100.0,
          lambda f: f["6.1-medium"].headlines["speedup_vs_overlap_%"]),
    Claim("6.1", "large: CPU-Free degrades vs best baseline (negative speedup)",
          -10.0, "%", -60.0, -0.1,
          lambda f: f["6.1-large"].headlines["speedup_vs_nvshmem_%"]),
    Claim("6.1", "large: PERKS speedup vs best baseline at 8 GPUs",
          18.8, "%", 8.0, 40.0,
          lambda f: f["6.1-large"].headlines["perks_vs_best_baseline_%"]),
    Claim("6.2", "3D no-compute comm improvement vs CPU-controlled at 8 GPUs",
          58.8, "%", 35.0, 85.0,
          lambda f: f["6.2"]["weak_nocompute"].headlines[
              "comm_improvement_vs_best_host_controlled_%"]),
    Claim("6.2", "3D strong-scaling no-compute: CPU-Free growth 2->8 GPUs",
          0.0, "%", -10.0, 60.0,
          lambda f: f["6.2"]["strong_nocompute"].headlines["cpufree_growth_%"]),
    Claim("6.2", "3D strong-scaling no-compute: Baseline Copy growth 2->8 GPUs",
          300.0, "%", 150.0, 1000.0,
          lambda f: f["6.2"]["strong_nocompute"].headlines["copy_growth_%"]),
    Claim("6.3a", "DaCe 1D total improvement at 8 GPUs",
          44.5, "%", 25.0, 70.0,
          lambda f: f["6.3a"].headlines["total_improvement_%"]),
    Claim("6.3a", "DaCe 1D communication improvement at 8 GPUs",
          26.8, "%", 10.0, 80.0,
          lambda f: f["6.3a"].headlines["comm_improvement_%"]),
    Claim("6.3b", "DaCe 2D total improvement at 8 GPUs",
          96.8, "%", 85.0, 100.0,
          lambda f: f["6.3b"].headlines["total_improvement_%"]),
    Claim("6.3b", "DaCe 2D baseline communication dominance",
          99.0, "%", 85.0, 100.0,
          lambda f: f["6.3b"].headlines["baseline_comm_fraction_%"]),
    Claim("6.3b", "DaCe 2D CPU-Free weak-scaling efficiency",
          81.2, "%", 50.0, 100.0,
          lambda f: f["6.3b"].headlines["cpufree_weak_scaling_efficiency_%"]),
)


def evaluate_claims(iterations: int = 30,
                    claims: tuple[Claim, ...] = PAPER_CLAIMS) -> list[ClaimResult]:
    """Run the experiments and evaluate every claim."""
    figures = _figures(iterations)
    return [ClaimResult(claim, claim.extract(figures)) for claim in claims]


def render_claims(results: list[ClaimResult]) -> str:
    """Markdown-ish verdict table."""
    lines = [
        f"{'fig':>6} | {'paper':>7} | {'measured':>8} | {'band':>16} | verdict | claim",
        "-" * 100,
    ]
    for r in results:
        c = r.claim
        verdict = "OK " if r.ok else "MISS"
        lines.append(
            f"{c.figure:>6} | {c.paper_value:>6.1f}{c.unit} | "
            f"{r.measured:>7.1f}{c.unit} | "
            f"[{c.lo:>6.1f}, {c.hi:>6.1f}] | {verdict:^7} | {c.description}"
        )
    passed = sum(1 for r in results if r.ok)
    lines.append("-" * 100)
    lines.append(f"{passed}/{len(results)} paper claims reproduced within band")
    return "\n".join(lines)
