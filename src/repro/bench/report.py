"""Paper-style table rendering for figure data."""

from __future__ import annotations

from typing import Any

from repro.bench.figures import FigureData

__all__ = ["history_fields", "render_figure"]


def history_fields(result: Any) -> dict[str, Any]:
    """Perf-history record fields for one sweep point's value.

    Accepts a figure :class:`~repro.bench.figures.Row` or the ``(row,
    metrics dump)`` pair a metrics-collecting sweep yields.  On top of
    the generic numeric fields (simulated per-iteration time, comm
    time, overlap, metrics digest) it labels the record with the row's
    series name and GPU count, so history files stay greppable without
    decoding point identities.
    """
    from repro.obs.progress import default_fields

    fields = default_fields(result)
    row = (result[0] if isinstance(result, tuple) and len(result) == 2
           else result)
    series = getattr(row, "series", None)
    if isinstance(series, str):
        fields["series"] = series
    x = getattr(row, "x", None)
    if isinstance(x, int):
        fields["gpus"] = x
    return fields


def render_figure(fig: FigureData) -> str:
    """Render one figure's rows as an aligned text table plus its
    headline metrics (the numbers quoted in the paper's prose)."""
    lines = [f"Figure {fig.figure}: {fig.title}"]
    series_names = sorted({r.series for r in fig.rows})
    xs = sorted({r.x for r in fig.rows})
    header = f"{'series':>24} " + " ".join(f"{x:>4} GPU" for x in xs)
    lines.append(header)
    lines.append("-" * len(header))
    for name in series_names:
        cells = []
        for x in xs:
            try:
                row = fig.at(name, x)
                cells.append(f"{row.per_iteration_us:8.2f}")
            except KeyError:
                cells.append(f"{'-':>8}")
        lines.append(f"{name:>24} " + " ".join(cells))
    if any(r.comm_us_per_iter for r in fig.rows):
        lines.append(f"{'-- comm us/iter --':>24}")
        for name in series_names:
            cells = []
            for x in xs:
                try:
                    row = fig.at(name, x)
                    cells.append(f"{row.comm_us_per_iter:8.2f}")
                except KeyError:
                    cells.append(f"{'-':>8}")
            lines.append(f"{name:>24} " + " ".join(cells))
    if fig.headlines:
        lines.append("headlines:")
        for key, value in fig.headlines.items():
            lines.append(f"  {key} = {value:.1f}")
    return "\n".join(lines)
