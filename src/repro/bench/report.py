"""Paper-style table rendering for figure data."""

from __future__ import annotations

from repro.bench.figures import FigureData

__all__ = ["render_figure"]


def render_figure(fig: FigureData) -> str:
    """Render one figure's rows as an aligned text table plus its
    headline metrics (the numbers quoted in the paper's prose)."""
    lines = [f"Figure {fig.figure}: {fig.title}"]
    series_names = sorted({r.series for r in fig.rows})
    xs = sorted({r.x for r in fig.rows})
    header = f"{'series':>24} " + " ".join(f"{x:>4} GPU" for x in xs)
    lines.append(header)
    lines.append("-" * len(header))
    for name in series_names:
        cells = []
        for x in xs:
            try:
                row = fig.at(name, x)
                cells.append(f"{row.per_iteration_us:8.2f}")
            except KeyError:
                cells.append(f"{'-':>8}")
        lines.append(f"{name:>24} " + " ".join(cells))
    if any(r.comm_us_per_iter for r in fig.rows):
        lines.append(f"{'-- comm us/iter --':>24}")
        for name in series_names:
            cells = []
            for x in xs:
                try:
                    row = fig.at(name, x)
                    cells.append(f"{row.comm_us_per_iter:8.2f}")
                except KeyError:
                    cells.append(f"{'-':>8}")
            lines.append(f"{name:>24} " + " ".join(cells))
    if fig.headlines:
        lines.append("headlines:")
        for key, value in fig.headlines.items():
            lines.append(f"  {key} = {value:.1f}")
    return "\n".join(lines)
