"""SDFG dataflow nodes (paper §2.3's five component kinds).

- :class:`AccessNode` — points to an array/container; outgoing edges
  are reads, incoming edges are writes.
- :class:`MapEntry`/:class:`MapExit` — data parallelism with symbolic
  ranges, schedulable to CPU or GPU.
- :class:`Tasklet` — arbitrary computation between memory connections;
  here it carries the NumPy expression source that both backends use.
- :class:`LibraryNode` — high-level constructs (MPI calls, NVSHMEM
  calls) that expand to concrete implementations; subclasses live in
  :mod:`repro.sdfg.libnodes`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.sdfg.memlet import Memlet
from repro.sdfg.symbols import Expr, expr_to_str

__all__ = ["AccessNode", "LibraryNode", "MapEntry", "MapExit", "Node", "Tasklet"]

_ids = itertools.count()


class Node:
    """Base dataflow node with a unique id for graph identity."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.node_id = next(_ids)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label} #{self.node_id}>"


class AccessNode(Node):
    """Read/write access to a named array."""

    def __init__(self, data: str) -> None:
        super().__init__(data)
        self.data = data


class MapEntry(Node):
    """Opens a parallel iteration space ``{param: (begin, end)}``.

    ``schedule`` is inherited from the enclosing state until a
    transformation (``GPUTransform``) overrides it.
    """

    def __init__(self, label: str, params: list[str],
                 ranges: list[tuple[Expr, Expr]]) -> None:
        super().__init__(label)
        if len(params) != len(ranges):
            raise ValueError("params and ranges must align")
        self.params = params
        self.ranges = ranges

    def range_str(self) -> str:
        parts = [
            f"{p}=[{expr_to_str(lo)}:{expr_to_str(hi)}]"
            for p, (lo, hi) in zip(self.params, self.ranges)
        ]
        return ", ".join(parts)


class MapExit(Node):
    """Closes the iteration space opened by its paired MapEntry."""

    def __init__(self, entry: MapEntry) -> None:
        super().__init__(f"{entry.label}_exit")
        self.entry = entry


class Tasklet(Node):
    """Computation between memory connections.

    ``expr_source`` is the (restricted, NumPy-semantics) Python
    expression of the right-hand side; both the pseudo-CUDA text
    backend and the simulator executor consume it.
    """

    def __init__(self, label: str, expr_source: str,
                 inputs: list[str], output: str) -> None:
        super().__init__(label)
        self.expr_source = expr_source
        self.inputs = inputs
        self.output = output


class LibraryNode(Node):
    """A high-level operation that expands to an implementation.

    ``expand()`` returns an implementation descriptor (library-specific
    dataclass) chosen from the node's configuration and its memlets —
    the mechanism behind the shape-based NVSHMEM dispatch of §5.3.1.
    """

    #: human-readable library name ("MPI", "NVSHMEM")
    library: str = ""

    def expand(self, sdfg: Any, bindings: dict[str, int]) -> Any:
        raise NotImplementedError
