"""Memlets: data-movement descriptors on SDFG edges.

A memlet names an array and a *subset* (per-dimension index or range)
and can answer the two questions the NVSHMEM lowering needs (§5.3.1):

- how many elements move (``volume``), and
- what the access *kind* is — ``SCALAR`` (single element, lowered to
  ``nvshmem_TYPE_p``), ``CONTIGUOUS`` (one memory block, lowered to
  ``putmem``-family), or ``STRIDED`` (lowered to ``nvshmem_TYPE_iput``
  plus explicit quiet + signal).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Union

from repro.sdfg.symbols import Expr, evaluate_expr, expr_to_str

__all__ = ["AccessKind", "Memlet", "Range"]


class AccessKind(enum.Enum):
    SCALAR = "scalar"
    CONTIGUOUS = "contiguous"
    STRIDED = "strided"


@dataclass(frozen=True)
class Range:
    """Half-open index range ``[start, stop)`` (step 1, like the
    paper's benchmarks).  Bounds may be negative (Python semantics)
    or symbolic."""

    start: Expr
    stop: Expr

    def __repr__(self) -> str:
        stop = "" if isinstance(self.stop, _Full) else expr_to_str(self.stop)
        return f"{expr_to_str(self.start)}:{stop}"


#: one dimension of a subset: a single index or a range
Dim = Union[int, "Expr", Range]


def _resolve_index(value: Expr, size: int, bindings: dict[str, int]) -> int:
    idx = evaluate_expr(value, bindings)
    return idx + size if idx < 0 else idx


@dataclass(frozen=True)
class Memlet:
    """``data[subset]`` with an access direction implied by the edge."""

    data: str
    subset: tuple[Dim, ...]

    @staticmethod
    def from_slices(data: str, index: Any) -> "Memlet":
        """Build from Python indexing syntax (ints / slices / tuples)."""
        if not isinstance(index, tuple):
            index = (index,)
        dims: list[Dim] = []
        for dim in index:
            if isinstance(dim, slice):
                if dim.step not in (None, 1):
                    raise ValueError("only unit-step slices supported")
                start = 0 if dim.start is None else dim.start
                stop = dim.stop  # None = full axis, resolved at evaluation
                dims.append(Range(start, stop if stop is not None else _FULL))
            else:
                dims.append(dim)
        return Memlet(data, tuple(dims))

    # -- geometry ---------------------------------------------------------------

    def resolve(self, shape: tuple[int, ...], bindings: dict[str, int]) -> tuple:
        """Concrete NumPy index tuple for this subset."""
        if len(self.subset) != len(shape):
            raise ValueError(
                f"memlet {self} has {len(self.subset)} dims for array of shape {shape}"
            )
        out: list[Any] = []
        for dim, size in zip(self.subset, shape):
            if isinstance(dim, Range):
                start = _resolve_index(dim.start, size, bindings)
                stop = size if dim.stop is _FULL else _resolve_index(dim.stop, size, bindings)
                out.append(slice(start, stop))
            else:
                out.append(_resolve_index(dim, size, bindings))
        return tuple(out)

    def dim_lengths(self, shape: tuple[int, ...], bindings: dict[str, int]) -> list[int]:
        """Length per dimension (1 for scalar dims)."""
        lengths = []
        for dim, size in zip(self.subset, shape):
            if isinstance(dim, Range):
                start = _resolve_index(dim.start, size, bindings)
                stop = size if dim.stop is _FULL else _resolve_index(dim.stop, size, bindings)
                if stop < start:
                    raise ValueError(f"empty/negative range in memlet {self}")
                lengths.append(stop - start)
            else:
                lengths.append(1)
        return lengths

    def volume(self, shape: tuple[int, ...], bindings: dict[str, int]) -> int:
        """Number of elements this memlet moves."""
        total = 1
        for n in self.dim_lengths(shape, bindings):
            total *= n
        return total

    def access_kind(self, shape: tuple[int, ...], bindings: dict[str, int]) -> AccessKind:
        """Classify for NVSHMEM specialization (paper §5.3.1).

        A subset is CONTIGUOUS iff it covers one contiguous block of
        row-major memory: after the first ranged dimension every later
        dimension must span its full axis.  A single sliced element
        range of length 1 still counts as SCALAR.
        """
        lengths = self.dim_lengths(shape, bindings)
        if all(n == 1 for n in lengths):
            return AccessKind.SCALAR
        ranged = [i for i, dim in enumerate(self.subset)
                  if isinstance(dim, Range) and lengths[i] > 1]
        first = ranged[0]
        for i in range(first + 1, len(self.subset)):
            dim = self.subset[i]
            size = shape[i]
            if not isinstance(dim, Range):
                return AccessKind.STRIDED
            start = _resolve_index(dim.start, size, bindings)
            stop = size if dim.stop is _FULL else _resolve_index(dim.stop, size, bindings)
            if start != 0 or stop != size:
                return AccessKind.STRIDED
        return AccessKind.CONTIGUOUS

    def __repr__(self) -> str:
        dims = []
        for dim in self.subset:
            if isinstance(dim, Range):
                dims.append(repr(dim))
            else:
                dims.append(expr_to_str(dim))
        return f"{self.data}[{', '.join(dims)}]"


class _Full:
    """Sentinel: range extends to the end of the axis."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<end>"


_FULL = _Full()
