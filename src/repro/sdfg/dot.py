"""Graphviz DOT rendering of SDFGs (the web-viewer stand-in).

``sdfg_to_dot`` renders the full program: one cluster per state (inner
dataflow as nodes/edges), loop regions as nested clusters, with the
visual conventions of DaCe's viewer — ellipses for access nodes,
trapezoid-ish map entries/exits, boxes for tasklets, octagons for
library nodes.  Render with ``dot -Tsvg program.dot -o program.svg``.
"""

from __future__ import annotations

from repro.hw.memory import Storage
from repro.sdfg.graph import LoopRegion, Region, SDFG, State
from repro.sdfg.nodes import AccessNode, LibraryNode, MapEntry, MapExit, Tasklet
from repro.sdfg.symbols import expr_to_str

__all__ = ["sdfg_to_dot"]

_STORAGE_COLORS = {
    Storage.HOST: "white",
    Storage.GLOBAL: "lightyellow",
    Storage.SYMMETRIC: "lightblue",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def sdfg_to_dot(sdfg: SDFG) -> str:
    """Render the SDFG as a Graphviz digraph."""
    lines = [
        f'digraph "{_escape(sdfg.name)}" {{',
        "    compound=true;",
        "    node [fontsize=10];",
        "    rankdir=TB;",
    ]
    counter = [0]
    prev_anchor: list[str | None] = [None]

    def emit_state(state: State, indent: str) -> str:
        cluster = f"cluster_state_{counter[0]}"
        counter[0] += 1
        lines.append(f'{indent}subgraph "{cluster}" {{')
        label = f"{state.name} [{state.schedule.value}]"
        if getattr(state, "sync_after", False):
            label += " +grid.sync"
        if getattr(state, "tb_group", None):
            label += f" ({state.tb_group} TBs)"
        lines.append(f'{indent}    label="{_escape(label)}";')
        lines.append(f"{indent}    style=rounded;")
        node_ids: dict[int, str] = {}
        anchor = None
        for node in state.nodes:
            node_id = f"n{counter[0]}"
            counter[0] += 1
            node_ids[node.node_id] = node_id
            if anchor is None:
                anchor = node_id
            if isinstance(node, AccessNode):
                desc = sdfg.arrays.get(node.data)
                fill = _STORAGE_COLORS.get(desc.storage, "white") if desc else "white"
                lines.append(
                    f'{indent}    {node_id} [shape=ellipse, style=filled, '
                    f'fillcolor={fill}, label="{_escape(node.data)}"];'
                )
            elif isinstance(node, MapEntry):
                lines.append(
                    f'{indent}    {node_id} [shape=invtrapezium, '
                    f'label="map {_escape(node.range_str())}"];'
                )
            elif isinstance(node, MapExit):
                lines.append(f'{indent}    {node_id} [shape=trapezium, label="map exit"];')
            elif isinstance(node, Tasklet):
                lines.append(
                    f'{indent}    {node_id} [shape=box, '
                    f'label="{_escape(node.expr_source[:40])}"];'
                )
            elif isinstance(node, LibraryNode):
                lines.append(
                    f'{indent}    {node_id} [shape=octagon, style=filled, '
                    f'fillcolor=lightsalmon, label="{_escape(node.label)}"];'
                )
            else:  # pragma: no cover - future node kinds
                lines.append(f'{indent}    {node_id} [shape=box, label="{node.label}"];')
        if anchor is None:
            anchor = f"n{counter[0]}"
            counter[0] += 1
            lines.append(f'{indent}    {anchor} [shape=point, style=invis];')
        for edge in state.edges:
            src = node_ids[edge.src.node_id]
            dst = node_ids[edge.dst.node_id]
            label = f' [label="{_escape(repr(edge.memlet))}"]' if edge.memlet else ""
            lines.append(f"{indent}    {src} -> {dst}{label};")
        lines.append(f"{indent}}}")
        if prev_anchor[0] is not None:
            lines.append(
                f'{indent}{prev_anchor[0]} -> {anchor} '
                f"[style=dashed, color=gray, constraint=true];"
            )
        prev_anchor[0] = anchor
        return cluster

    def emit_region(region: Region, indent: str) -> None:
        for el in region.elements:
            if isinstance(el, LoopRegion):
                cluster = f"cluster_loop_{counter[0]}"
                counter[0] += 1
                lines.append(f'{indent}subgraph "{cluster}" {{')
                label = el.trip_count_str()
                if el.schedule.value != "cpu":
                    label += f" [{el.schedule.value}]"
                lines.append(f'{indent}    label="{_escape(label)}";')
                lines.append(f"{indent}    style=bold;")
                emit_region(el, indent + "    ")
                lines.append(f"{indent}}}")
            else:
                emit_state(el, indent)

    emit_region(sdfg.body, "    ")
    lines.append("}")
    return "\n".join(lines)
