"""MPI library nodes — DaCe's existing distributed support (§5.2).

These reproduce the semantics of the DaCe MPI nodes the paper's
baselines use: nonblocking point-to-point with ``Waitall``, expressed
directly in the dataflow graph.  Peer ranks are *parameters* (``nw``,
``ne`` ...); the value ``MPI_PROC_NULL`` (-1) makes an operation a
no-op, which is how edge ranks fall out of the SPMD program without
control flow.

On GPU-transformed SDFGs the expansion mirrors what DaCe generates
(Fig. 5.1): a stream synchronize before each call, a device-to-device
staging copy into a temporary buffer, then the host MPI call — the
host-side overhead avalanche the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.hw.memory import Storage
from repro.sdfg.memlet import AccessKind, Memlet
from repro.sdfg.nodes import LibraryNode

__all__ = ["MPI_PROC_NULL", "MPIBarrier", "MPIExpansion", "MPIIrecv", "MPIIsend", "MPIWaitall"]

MPI_PROC_NULL = -1


@dataclass(frozen=True)
class MPIExpansion:
    """Concrete lowering of one MPI node on a GPU-resident array."""

    kind: str                    #: "isend" | "irecv" | "waitall" | "barrier"
    stream_sync: bool            #: generated cudaStreamSynchronize before the call
    staging_copy: bool           #: generated d2d cudaMemcpy through a temp buffer
    vector_datatype: bool        #: MPI_Type_vector needed (strided subset)


class _MPIPointToPoint(LibraryNode):
    library = "MPI"

    def __init__(self, label: str, buffer: Memlet, peer: str | int, tag: int) -> None:
        super().__init__(label)
        self.buffer = buffer
        self.peer = peer
        self.tag = tag

    def expand(self, sdfg: Any, bindings: dict[str, int]) -> MPIExpansion:
        desc = sdfg.arrays[self.buffer.data]
        shape = tuple(
            s if isinstance(s, int) else bindings[s.name] for s in desc.shape
        )
        kind = self.buffer.access_kind(shape, bindings)
        on_gpu = desc.storage in (Storage.GLOBAL, Storage.SYMMETRIC)
        return MPIExpansion(
            kind=self._kind,
            stream_sync=on_gpu,
            staging_copy=on_gpu,
            vector_datatype=(kind is AccessKind.STRIDED),
        )

    _kind = ""


class MPIIsend(_MPIPointToPoint):
    """``dc.comm.Isend(view, dest, tag)``."""

    _kind = "isend"

    def __init__(self, buffer: Memlet, dest: str | int, tag: int) -> None:
        super().__init__(f"Isend(tag={tag})", buffer, dest, tag)

    @property
    def dest(self) -> str | int:
        return self.peer


class MPIIrecv(_MPIPointToPoint):
    """``dc.comm.Irecv(view, source, tag)``."""

    _kind = "irecv"

    def __init__(self, buffer: Memlet, source: str | int, tag: int) -> None:
        super().__init__(f"Irecv(tag={tag})", buffer, source, tag)

    @property
    def source(self) -> str | int:
        return self.peer


class MPIWaitall(LibraryNode):
    """``dc.comm.Waitall()`` — completes all outstanding requests."""

    library = "MPI"

    def __init__(self) -> None:
        super().__init__("Waitall")

    def expand(self, sdfg: Any, bindings: dict[str, int]) -> MPIExpansion:
        return MPIExpansion("waitall", stream_sync=False, staging_copy=False,
                            vector_datatype=False)


class MPIBarrier(LibraryNode):
    """``dc.comm.Barrier()``."""

    library = "MPI"

    def __init__(self) -> None:
        super().__init__("Barrier")

    def expand(self, sdfg: Any, bindings: dict[str, int]) -> MPIExpansion:
        return MPIExpansion("barrier", stream_sync=False, staging_copy=False,
                            vector_datatype=False)
