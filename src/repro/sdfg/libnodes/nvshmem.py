"""NVSHMEM library nodes — the main compiler contribution (§5.3).

:class:`PutmemSignal` supersedes ``MPI_Isend`` and :class:`SignalWait`
supersedes ``MPI_Recv``/``Irecv`` with flag-based point-to-point
synchronization.  Expansion implements the shape dispatch of §5.3.1:

==============  ======================================================
subset kind      generated operations
==============  ======================================================
CONTIGUOUS       ``nvshmemx_putmem_signal_nbi_block`` (composite —
                 data, then signal, ordered)
STRIDED          ``nvshmem_TYPE_iput`` + ``nvshmem_quiet()`` +
                 ``nvshmemx_signal_op`` (no combined signaling variant
                 exists for strided ops)
SCALAR           ``nvshmem_TYPE_p`` + ``nvshmem_quiet()`` +
                 ``nvshmemx_signal_op``
==============  ======================================================

The signal value is a symbolic expression in the enclosing loop
variable (the iteration-parity semaphore of §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import active_metrics
from repro.sdfg.memlet import AccessKind, Memlet
from repro.sdfg.nodes import LibraryNode
from repro.sdfg.symbols import Expr, expr_to_str

__all__ = ["NVSHMEMExpansion", "PutmemSignal", "SignalWait"]


@dataclass(frozen=True)
class NVSHMEMExpansion:
    """Concrete lowering of one NVSHMEM node."""

    kind: str            #: "putmem_signal_nbi" | "iput" | "p" | "signal_wait"
    ops: tuple[str, ...]  #: generated call sequence, in order
    access: AccessKind | None


def _counted(expansion: NVSHMEMExpansion) -> NVSHMEMExpansion:
    """Record which lowering the shape dispatch chose (§5.3.1 table)."""
    m = active_metrics()
    if m is not None:
        m.counter("sdfg.nvshmem.expansions", kind=expansion.kind).inc()
    return expansion


def _concrete_shape(sdfg: Any, data: str, bindings: dict[str, int]) -> tuple[int, ...]:
    desc = sdfg.arrays[data]
    return tuple(s if isinstance(s, int) else bindings[s.name] for s in desc.shape)


class PutmemSignal(LibraryNode):
    """``nvshmem.PutmemSignal(dst_view, src_view, flag, value, pe)``.

    Writes the local ``src`` subset into the remote PE's ``dst``
    subset and updates signal word ``flag_index`` there to ``value``
    (delivered after the data).  ``nbi=False`` selects the blocking
    variant (ablation §5.3.2).

    ``flag_index=None`` lowers to a bare (unsignaled) put: the data
    moves, but nothing at the destination learns it arrived.  That is
    legal IR — some producers genuinely have no consumer to notify —
    but it is exactly the shape the communication lint
    (:mod:`repro.sdfg.lint`) flags when the destination is read on the
    next loop iteration.
    """

    library = "NVSHMEM"

    #: valid values for ``implementation``
    IMPLEMENTATIONS = ("auto", "mapped")

    def __init__(
        self,
        dst: Memlet,
        src: Memlet,
        flag_index: int | None,
        signal_value: Expr,
        pe: str | int,
        *,
        nbi: bool = True,
        implementation: str = "auto",
    ) -> None:
        super().__init__(f"PutmemSignal(flag={flag_index})")
        if implementation not in self.IMPLEMENTATIONS:
            raise ValueError(
                f"unknown implementation {implementation!r}; "
                f"choose from {self.IMPLEMENTATIONS}"
            )
        self.dst = dst
        self.src = src
        self.flag_index = flag_index
        self.signal_value = signal_value
        self.pe = pe
        self.nbi = nbi
        self.implementation = implementation

    def expand(self, sdfg: Any, bindings: dict[str, int]) -> NVSHMEMExpansion:
        shape = _concrete_shape(sdfg, self.src.data, bindings)
        kind = self.src.access_kind(shape, bindings)
        signaled = self.flag_index is not None
        tail = ("quiet", "signal_op") if signaled else ("quiet",)
        if self.implementation == "mapped" and kind is not AccessKind.SCALAR:
            # §5.3.2 Mapped specialization: per-element p across threads
            return _counted(NVSHMEMExpansion("p_mapped", ("p_mapped", *tail), kind))
        if kind is AccessKind.CONTIGUOUS:
            if signaled:
                op = "putmem_signal_nbi" if self.nbi else "putmem_signal"
            else:
                op = "putmem_nbi" if self.nbi else "putmem"
            return _counted(NVSHMEMExpansion(op, (op,), kind))
        if kind is AccessKind.STRIDED:
            return _counted(NVSHMEMExpansion("iput", ("iput", *tail), kind))
        return _counted(NVSHMEMExpansion("p", ("p", *tail), kind))

    def __repr__(self) -> str:
        sig = (
            f"sig[{self.flag_index}]={expr_to_str(self.signal_value)}"
            if self.flag_index is not None
            else "unsignaled"
        )
        return f"<PutmemSignal {self.src!r} -> pe:{self.pe} {self.dst!r} {sig}>"


class SignalWait(LibraryNode):
    """``nvshmem.SignalWait(flag, value)`` — local
    ``nvshmem_signal_wait_until(flag, NVSHMEM_CMP_GE, value)``."""

    library = "NVSHMEM"

    def __init__(self, flag_index: int, value: Expr) -> None:
        super().__init__(f"SignalWait(flag={flag_index})")
        self.flag_index = flag_index
        self.value = value

    def expand(self, sdfg: Any, bindings: dict[str, int]) -> NVSHMEMExpansion:
        return _counted(NVSHMEMExpansion("signal_wait", ("signal_wait_until",), None))

    def __repr__(self) -> str:
        return f"<SignalWait sig[{self.flag_index}] >= {expr_to_str(self.value)}>"
