"""Library nodes: MPI (existing distributed support) and NVSHMEM
(this work's GPU-initiated communication library, paper §5.3)."""

from repro.sdfg.libnodes.mpi import (
    MPIBarrier,
    MPIIrecv,
    MPIIsend,
    MPIWaitall,
)
from repro.sdfg.libnodes.nvshmem import (
    NVSHMEMExpansion,
    PutmemSignal,
    SignalWait,
)

__all__ = [
    "MPIBarrier",
    "MPIIrecv",
    "MPIIsend",
    "MPIWaitall",
    "NVSHMEMExpansion",
    "PutmemSignal",
    "SignalWait",
]
