"""The paper's DaCe benchmark programs (§6.2) in the Python frontend.

``jacobi_1d``: 1-D slab decomposition, two neighbors, single-element
halos — the program of Listing 5.1, two relaxation phases per time
step (A→B, B→A) as in the npbench original.

``jacobi_2d``: 2-D process-grid decomposition, four neighbors; north/
south halos are contiguous rows, east/west halos are strided columns
(``MPI_Type_vector`` in the baseline, ``nvshmem_double_iput`` in the
CPU-Free lowering).

``cpufree_pipeline`` applies the transformation sequence of §6.2.1 to
either program; the untouched (``gpu_transform``-only) SDFG is the
baseline.
"""

from __future__ import annotations

from repro.sdfg.frontend import float64, int32, program
from repro.sdfg.graph import SDFG
from repro.sdfg.symbols import Sym
from repro.sdfg.transforms import (
    gpu_persistent_kernel,
    gpu_transform,
    map_fusion,
    mpi_to_nvshmem,
    nvshmem_array,
)
from repro.sdfg.validation import validate

__all__ = [
    "CONJUGATES_1D",
    "CONJUGATES_2D",
    "baseline_pipeline",
    "build_jacobi_1d_sdfg",
    "build_jacobi_2d_sdfg",
    "build_jacobi_3d_sdfg",
    "cpufree_pipeline",
]

N = Sym("N")
M = Sym("M")

#: peer-parameter conjugates: what I send to my west, they receive from
#: their east (SPMD symmetry used by MPIToNVSHMEM)
CONJUGATES_1D = {"nw": "ne", "ne": "nw"}
CONJUGATES_2D = {"nn": "ns", "ns": "nn", "nw": "ne", "ne": "nw"}


@program
def jacobi_1d(A: float64[N], B: float64[N], TSTEPS: int32, nw: int32, ne: int32):
    for t in range(1, TSTEPS):
        comm.Isend(A[1], nw, 2)          # noqa: F821 - frontend syntax
        comm.Isend(A[N - 2], ne, 3)      # noqa: F821
        comm.Irecv(A[0], nw, 3)          # noqa: F821
        comm.Irecv(A[N - 1], ne, 2)      # noqa: F821
        comm.Waitall()                   # noqa: F821
        B[1:-1] = (A[:-2] + A[1:-1] + A[2:]) / 3.0
        comm.Isend(B[1], nw, 4)          # noqa: F821
        comm.Isend(B[N - 2], ne, 5)      # noqa: F821
        comm.Irecv(B[0], nw, 5)          # noqa: F821
        comm.Irecv(B[N - 1], ne, 4)      # noqa: F821
        comm.Waitall()                   # noqa: F821
        A[1:-1] = (B[:-2] + B[1:-1] + B[2:]) / 3.0


@program
def jacobi_2d(A: float64[N, M], B: float64[N, M], TSTEPS: int32,
              nn: int32, ns: int32, nw: int32, ne: int32):
    for t in range(1, TSTEPS):
        comm.Isend(A[1, 1:-1], nn, 0)        # noqa: F821 - row, contiguous
        comm.Isend(A[N - 2, 1:-1], ns, 1)    # noqa: F821
        comm.Isend(A[1:-1, 1], nw, 2)        # noqa: F821 - column, strided
        comm.Isend(A[1:-1, M - 2], ne, 3)    # noqa: F821
        comm.Irecv(A[0, 1:-1], nn, 1)        # noqa: F821
        comm.Irecv(A[N - 1, 1:-1], ns, 0)    # noqa: F821
        comm.Irecv(A[1:-1, 0], nw, 3)        # noqa: F821
        comm.Irecv(A[1:-1, M - 1], ne, 2)    # noqa: F821
        comm.Waitall()                       # noqa: F821
        B[1:-1, 1:-1] = 0.25 * (A[:-2, 1:-1] + A[2:, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:])
        comm.Isend(B[1, 1:-1], nn, 4)        # noqa: F821
        comm.Isend(B[N - 2, 1:-1], ns, 5)    # noqa: F821
        comm.Isend(B[1:-1, 1], nw, 6)        # noqa: F821
        comm.Isend(B[1:-1, M - 2], ne, 7)    # noqa: F821
        comm.Irecv(B[0, 1:-1], nn, 5)        # noqa: F821
        comm.Irecv(B[N - 1, 1:-1], ns, 4)    # noqa: F821
        comm.Irecv(B[1:-1, 0], nw, 7)        # noqa: F821
        comm.Irecv(B[1:-1, M - 1], ne, 6)    # noqa: F821
        comm.Waitall()                       # noqa: F821
        A[1:-1, 1:-1] = 0.25 * (B[:-2, 1:-1] + B[2:, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:])


@program
def jacobi_3d(A: float64[N, M, M], B: float64[N, M, M], TSTEPS: int32,
              nw: int32, ne: int32):
    # z-axis slab decomposition: halo planes are contiguous memory
    # blocks (trailing axes fully spanned), so the CPU-Free lowering
    # uses nvshmemx_putmem_signal_nbi_block for them.
    for t in range(1, TSTEPS):
        comm.Isend(A[1, :, :], nw, 0)        # noqa: F821
        comm.Isend(A[N - 2, :, :], ne, 1)    # noqa: F821
        comm.Irecv(A[0, :, :], nw, 1)        # noqa: F821
        comm.Irecv(A[N - 1, :, :], ne, 0)    # noqa: F821
        comm.Waitall()                       # noqa: F821
        B[1:-1, 1:-1, 1:-1] = (
            A[:-2, 1:-1, 1:-1] + A[2:, 1:-1, 1:-1]
            + A[1:-1, :-2, 1:-1] + A[1:-1, 2:, 1:-1]
            + A[1:-1, 1:-1, :-2] + A[1:-1, 1:-1, 2:]
        ) / 6.0
        comm.Isend(B[1, :, :], nw, 2)        # noqa: F821
        comm.Isend(B[N - 2, :, :], ne, 3)    # noqa: F821
        comm.Irecv(B[0, :, :], nw, 3)        # noqa: F821
        comm.Irecv(B[N - 1, :, :], ne, 2)    # noqa: F821
        comm.Waitall()                       # noqa: F821
        A[1:-1, 1:-1, 1:-1] = (
            B[:-2, 1:-1, 1:-1] + B[2:, 1:-1, 1:-1]
            + B[1:-1, :-2, 1:-1] + B[1:-1, 2:, 1:-1]
            + B[1:-1, 1:-1, :-2] + B[1:-1, 1:-1, 2:]
        ) / 6.0


def build_jacobi_1d_sdfg() -> SDFG:
    return jacobi_1d.to_sdfg()


def build_jacobi_2d_sdfg() -> SDFG:
    return jacobi_2d.to_sdfg()


def build_jacobi_3d_sdfg() -> SDFG:
    return jacobi_3d.to_sdfg()


def baseline_pipeline(sdfg: SDFG) -> SDFG:
    """The §6.2.1 baseline: GPU port + auto-optimizer (MapFusion)."""
    gpu_transform(sdfg)
    map_fusion(sdfg)
    validate(sdfg)
    return sdfg


def cpufree_pipeline(
    sdfg: SDFG,
    conjugates: dict[str, str],
    *,
    nbi: bool = True,
    specialize_comm: bool = False,
) -> SDFG:
    """The §6.2.1 CPU-Free pipeline (on top of the baseline passes).

    ``specialize_comm=True`` additionally enables the §5.4 future-work
    thread-block specialization for generated code.
    """
    gpu_transform(sdfg)
    map_fusion(sdfg)
    mpi_to_nvshmem(sdfg, conjugates, nbi=nbi)
    nvshmem_array(sdfg)
    gpu_persistent_kernel(sdfg, specialize_comm=specialize_comm)
    validate(sdfg)
    return sdfg
