"""NVSHMEMArray: move NVSHMEM-accessed arrays to the symmetric heap.

Paper §5.3.3: "We also add an NVSHMEMArray transformation that
automatically sets Access nodes accessed by NVSHMEM library nodes to
GPU_NVSHMEM."  Remote-memory operations may only target symmetric
allocations; validation enforces it afterwards.
"""

from __future__ import annotations

from repro.hw.memory import Storage
from repro.sdfg.graph import SDFG
from repro.sdfg.libnodes.nvshmem import PutmemSignal

__all__ = ["nvshmem_array"]


def nvshmem_array(sdfg: SDFG) -> SDFG:
    """In-place: set storage of every NVSHMEM-touched array to SYMMETRIC."""
    touched: set[str] = set()
    for state in sdfg.walk_states():
        for node in state.library_nodes:
            if isinstance(node, PutmemSignal):
                touched.add(node.src.data)
                touched.add(node.dst.data)
    for name in touched:
        sdfg.arrays[name].storage = Storage.SYMMETRIC
    return sdfg
