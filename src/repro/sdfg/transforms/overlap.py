"""AutoOverlap: chunked compute/communication tiling as a transformation.

The hand-written CPU-Free stencils (paper §4.1) split each rank's
domain into eagerly-communicated *boundary* rows and bulk *interior*
rows so the halo puts overlap interior compute.  This pass derives the
same schedule mechanically from the lowered SDFG — the compiler-support
claim of the paper, closed the way Syncopate's chunk-centric tiling
closes it:

1. find a compute map inside a time loop whose written array feeds
   :class:`PutmemSignal` states *later in the same loop body*, with the
   put's leading-dimension index equal to the map's first or last
   written row (a halo boundary);
2. rewrite the map into ``K + 2`` row chunks — the two boundary chunks
   first, each immediately followed by its (relocated) put state, then
   ``K`` interior chunks covering the remaining rows;
3. tag every emitted state with a shared ``overlap_group`` so the
   persistent-kernel barrier relaxation and the communication lint both
   know the chunks write *disjoint* row blocks (no grid-wide barrier
   between them, no src-reuse hazard against the eager puts).

Only maps the affine fastpath can vectorize are tiled ("tileable"):
the rewrite must rebuild each tasklet's expression with shifted slice
bounds, and that is exactly the expression subset
:mod:`repro.sdfg.codegen.fastpath` proves affine.  Anything else —
calls, whole-array reads, partial indexing — raises
:class:`OverlapTransformError` (``non-tileable``) instead of silently
passing, and SDFGs with communication-lint findings are refused
outright: only race-free programs are rewritten.

Symbolic bound comparisons use probe evaluation: both expressions are
evaluated under several fixed valuations of their symbols.  The bound
language is affine (``+ - * //`` over symbols and literals), where
agreement on a handful of independent valuations implies equality for
every practical program; no computer-algebra system is needed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.sdfg.graph import LoopRegion, SDFG, Schedule, State
from repro.sdfg.libnodes.nvshmem import PutmemSignal
from repro.sdfg.lint import lint_communication
from repro.sdfg.memlet import Memlet, Range, _FULL
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet
from repro.sdfg.symbols import BinOp, Expr, Sym, evaluate_expr, expr_to_str
from repro.sdfg.transforms.persistent import _partition_comm_states, _transform_loop

__all__ = ["OverlapTransformError", "auto_overlap"]


class OverlapTransformError(ValueError):
    """The SDFG cannot be auto-overlapped (named refusal, never silent)."""


# ---------------------------- symbolic helpers ---------------------------------


def _fold(op: str, lhs: Expr, rhs: Expr) -> Expr:
    """Build ``lhs op rhs`` with constant folding and identity elision."""
    if isinstance(lhs, int) and isinstance(rhs, int):
        return {"+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                "//": lhs // rhs if rhs else 0}[op]
    if op == "+":
        if lhs == 0:
            return rhs
        if rhs == 0:
            return lhs
    elif op == "-":
        if rhs == 0:
            return lhs
    elif op == "*":
        if lhs == 1:
            return rhs
        if rhs == 1:
            return lhs
        if lhs == 0 or rhs == 0:
            return 0
    return BinOp(op, lhs, rhs)


def _expr_names(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, Sym):
        out.add(expr.name)
    elif isinstance(expr, BinOp):
        _expr_names(expr.lhs, out)
        _expr_names(expr.rhs, out)


#: three independent valuations; affine bounds agreeing on all of them
#: are equal for every practical program (see module docstring)
_PROBE_SALTS = (0, 1, 2)


def _probe_bindings(names: list[str], salt: int) -> dict[str, int]:
    return {name: 1009 + 97 * i + 7919 * salt for i, name in enumerate(names)}


def _probe_eq(a: Expr, b: Expr) -> bool:
    """Equality of two affine bound expressions via probe evaluation."""
    names: set[str] = set()
    _expr_names(a, names)
    _expr_names(b, names)
    ordered = sorted(names)
    return all(
        evaluate_expr(a, _probe_bindings(ordered, salt))
        == evaluate_expr(b, _probe_bindings(ordered, salt))
        for salt in _PROBE_SALTS
    )


def _probe_min(expr: Expr) -> int:
    """Smallest probe valuation of ``expr`` (sanity bound checks)."""
    names: set[str] = set()
    _expr_names(expr, names)
    ordered = sorted(names)
    return min(
        evaluate_expr(expr, _probe_bindings(ordered, salt)) for salt in _PROBE_SALTS
    )


def _norm_bound(bound: Expr, size: Expr) -> Expr:
    """Resolve a possibly-negative literal bound against the axis size
    (Python slice semantics, as :meth:`Memlet.resolve` applies them)."""
    if isinstance(bound, int) and bound < 0:
        return _fold("+", size, bound)
    return bound


def _expr_ast(expr: Expr) -> ast.expr:
    """Render a symbolic expression back into (bound-legal) AST."""
    return ast.parse(expr_to_str(expr), mode="eval").body


class _NotTileable(Exception):
    """Internal: the expression leaves the affine/tileable subset."""


def _ast_to_expr(node: ast.expr, symbols: set[str]) -> Expr:
    """Frontend-equivalent index language: ints, scalar symbols, + - * //."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            raise _NotTileable(f"non-integer bound {node.value!r}")
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _ast_to_expr(node.operand, symbols)
        return -inner if isinstance(inner, int) else _fold("-", 0, inner)
    if isinstance(node, ast.Name):
        if node.id not in symbols:
            raise _NotTileable(f"unknown name {node.id!r} in slice bound")
        return Sym(node.id)
    if isinstance(node, ast.BinOp):
        ops = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//"}
        op = ops.get(type(node.op))
        if op is None:
            raise _NotTileable(
                f"unsupported bound operator {type(node.op).__name__}")
        return _fold(op, _ast_to_expr(node.left, symbols),
                     _ast_to_expr(node.right, symbols))
    raise _NotTileable(f"unsupported bound syntax {type(node).__name__}")


# ---------------------------- expression chunking ------------------------------

_ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
                   ast.Mod, ast.Pow)
_ALLOWED_UNARY = (ast.USub, ast.UAdd)


class _ChunkRewriter(ast.NodeTransformer):
    """Shift the leading-dimension slice of every array subscript from
    the original written rows ``[a, b)`` to a chunk ``[lo, hi)``.

    A subscript reading ``X[s:e, ...]`` with offset ``d = s - a``
    becomes ``X[lo+d : hi+d, ...]``; fixed-row reads (``X[5, ...]``)
    are chunk-invariant and pass through.  Collects the chunk's read
    memlets as a side effect.  Anything outside the affine subset the
    fastpath vectorizes raises :class:`_NotTileable`.
    """

    def __init__(self, sdfg: SDFG, symbols: set[str], a: Expr, b: Expr,
                 lo: Expr, hi: Expr) -> None:
        self.sdfg = sdfg
        self.symbols = symbols
        self.a = a
        self.b = b
        self.lo = lo
        self.hi = hi
        self.reads: list[Memlet] = []

    # structural whitelist (mirrors fastpath._Rewriter) ------------------

    def visit_Expression(self, node):  # noqa: N802
        return ast.Expression(body=self.visit(node.body))

    def visit_BinOp(self, node):  # noqa: N802
        if not isinstance(node.op, _ALLOWED_BINOPS):
            raise _NotTileable(f"operator {type(node.op).__name__}")
        return ast.BinOp(left=self.visit(node.left), op=node.op,
                         right=self.visit(node.right))

    def visit_UnaryOp(self, node):  # noqa: N802
        if not isinstance(node.op, _ALLOWED_UNARY):
            raise _NotTileable(f"unary {type(node.op).__name__}")
        return ast.UnaryOp(op=node.op, operand=self.visit(node.operand))

    def visit_Constant(self, node):  # noqa: N802
        if not isinstance(node.value, (int, float)) or isinstance(node.value, bool):
            raise _NotTileable(f"constant {node.value!r}")
        return node

    def visit_Name(self, node):  # noqa: N802
        if node.id in self.sdfg.arrays:
            raise _NotTileable(f"whole-array reference {node.id!r}")
        if node.id not in self.symbols:
            raise _NotTileable(f"unknown name {node.id!r}")
        return node

    def generic_visit(self, node):
        raise _NotTileable(f"unsupported syntax {type(node).__name__}")

    # the actual rewrite --------------------------------------------------

    def visit_Subscript(self, node):  # noqa: N802
        if not (isinstance(node.value, ast.Name)
                and node.value.id in self.sdfg.arrays):
            raise _NotTileable("subscript of a non-array")
        array = node.value.id
        desc = self.sdfg.arrays[array]
        parts = (list(node.slice.elts) if isinstance(node.slice, ast.Tuple)
                 else [node.slice])
        if len(parts) != desc.ndim:
            raise _NotTileable(
                f"{array}: partial index ({len(parts)} of {desc.ndim} dims)")
        size0 = desc.shape[0]
        dims: list = []
        lead = parts[0]
        if isinstance(lead, ast.Slice):
            if lead.step is not None:
                raise _NotTileable("strided slice")
            s_lo = 0 if lead.lower is None else _ast_to_expr(lead.lower, self.symbols)
            s_hi = (size0 if lead.upper is None
                    else _ast_to_expr(lead.upper, self.symbols))
            s_lo = _norm_bound(s_lo, size0)
            s_hi = _norm_bound(s_hi, size0)
            # the read extent must match the written extent, or the
            # per-chunk shift is ill-defined
            if not _probe_eq(_fold("-", s_hi, s_lo), _fold("-", self.b, self.a)):
                raise _NotTileable(
                    f"{array}: leading slice extent differs from the written rows")
            delta = _fold("-", s_lo, self.a)
            new_lo = _fold("+", self.lo, delta)
            new_hi = _fold("+", self.hi, delta)
            parts[0] = ast.Slice(lower=_expr_ast(new_lo), upper=_expr_ast(new_hi))
            dims.append(Range(new_lo, new_hi))
        else:
            # fixed row: chunk-invariant, keep verbatim
            dims.append(_ast_to_expr(lead, self.symbols))
        for part in parts[1:]:
            dims.append(self._trailing_dim(part))
        memlet = Memlet(array, tuple(dims))
        if memlet not in self.reads:
            self.reads.append(memlet)
        index: ast.expr = (ast.Tuple(elts=parts, ctx=ast.Load())
                           if len(parts) > 1 else parts[0])
        return ast.Subscript(value=ast.Name(id=array, ctx=ast.Load()),
                             slice=index, ctx=ast.Load())

    def _trailing_dim(self, part: ast.expr):
        if isinstance(part, ast.Slice):
            if part.step is not None:
                raise _NotTileable("strided slice")
            lo = 0 if part.lower is None else _ast_to_expr(part.lower, self.symbols)
            hi = _FULL if part.upper is None else _ast_to_expr(part.upper, self.symbols)
            return Range(lo, hi)
        return _ast_to_expr(part, self.symbols)


# ---------------------------- candidate analysis -------------------------------


@dataclass
class _TaskletInfo:
    tasklet: Tasklet
    out_memlet: Memlet
    tree: ast.expr  #: parsed expression source


@dataclass
class _Candidate:
    """One compute map with relocatable boundary puts after it."""

    state: State
    index: int  #: position in ``loop.elements``
    entry: MapEntry
    tasklets: list[_TaskletInfo]
    a: Expr  #: normalized first written row
    b: Expr  #: normalized one-past-last written row
    top_puts: list[State]
    bottom_puts: list[State]


def _scalar_symbols(sdfg: SDFG) -> set[str]:
    symbols = set(sdfg.symbols) | set(sdfg.params)
    for region in sdfg.walk_regions():
        var = getattr(region, "var", None)
        if var:
            symbols.add(var)
    return symbols


def _out_memlet(state: State, tasklet: Tasklet) -> Memlet:
    edge = next(
        e for e in state.edges
        if isinstance(e.dst, AccessNode) and e.memlet is not None
        and e.memlet.data == tasklet.output
    )
    return edge.memlet


def _relocatable_put_state(state: State) -> PutmemSignal | None:
    """A state that can move as a unit: exactly one put, nothing else."""
    libs = state.library_nodes
    if state.tasklets or len(libs) != 1 or not isinstance(libs[0], PutmemSignal):
        return None
    return libs[0]


def _find_candidate(sdfg: SDFG, loop: LoopRegion, index: int,
                    symbols: set[str]) -> _Candidate | None:
    """Classify ``loop.elements[index]``; raises on a non-tileable
    candidate, returns None when the state is not a candidate at all."""
    state = loop.elements[index]
    written = {t.output for t in state.tasklets}

    # boundary-put scan first: a map with no downstream halo puts is
    # simply not a candidate (no communication to overlap)
    try:
        anchor = _out_memlet(state, state.tasklets[0])
    except StopIteration:
        return None  # dangling tasklet without an output edge
    lead = anchor.subset[0]
    if not isinstance(lead, Range):
        return None  # single-row write: nothing to tile
    size0 = sdfg.arrays[anchor.data].shape[0]
    a = _norm_bound(lead.start, size0)
    b = size0 if lead.stop is _FULL else _norm_bound(lead.stop, size0)

    top_puts: list[State] = []
    bottom_puts: list[State] = []
    for later in loop.elements[index + 1:]:
        if not isinstance(later, State):
            continue
        put = _relocatable_put_state(later)
        if put is None or put.src.data not in written:
            continue
        lead_src = put.src.subset[0]
        if isinstance(lead_src, Range):
            continue  # spans rows across chunks; left in place
        src_size0 = sdfg.arrays[put.src.data].shape[0]
        row = _norm_bound(lead_src, src_size0)
        if _probe_eq(row, a):
            top_puts.append(later)
        elif _probe_eq(row, _fold("-", b, 1)):
            bottom_puts.append(later)
    if not top_puts and not bottom_puts:
        return None

    # candidate confirmed: now every tasklet must be tileable
    if _probe_min(_fold("-", b, a)) < 3:
        raise OverlapTransformError(
            f"map in state {state.name!r} is non-tileable: fewer than 3 "
            f"written rows (no interior between the boundary chunks)")
    infos: list[_TaskletInfo] = []
    for tasklet in state.tasklets:
        out = _out_memlet(state, tasklet)
        t_lead = out.subset[0]
        if not isinstance(t_lead, Range):
            raise OverlapTransformError(
                f"map in state {state.name!r} is non-tileable: tasklet "
                f"{tasklet.label!r} writes a single row")
        t_size0 = sdfg.arrays[out.data].shape[0]
        t_a = _norm_bound(t_lead.start, t_size0)
        t_b = t_size0 if t_lead.stop is _FULL else _norm_bound(t_lead.stop, t_size0)
        if not (_probe_eq(t_a, a) and _probe_eq(t_b, b)):
            raise OverlapTransformError(
                f"map in state {state.name!r} is non-tileable: tasklet "
                f"{tasklet.label!r} writes rows "
                f"[{expr_to_str(t_a)}, {expr_to_str(t_b)}) but the map "
                f"covers [{expr_to_str(a)}, {expr_to_str(b)})")
        try:
            tree = ast.parse(tasklet.expr_source, mode="eval")
            # trial rewrite over the full extent: surfaces every
            # unsupported construct before any mutation happens
            _ChunkRewriter(sdfg, symbols, a, b, a, b).visit(tree)
        except _NotTileable as exc:
            raise OverlapTransformError(
                f"map in state {state.name!r} is non-tileable: {exc} "
                f"(only affine maps the fastpath vectorizes can be "
                f"auto-overlapped)") from None
        except SyntaxError as exc:  # pragma: no cover - corrupt IR
            raise OverlapTransformError(
                f"map in state {state.name!r} is non-tileable: {exc}") from None
        infos.append(_TaskletInfo(tasklet, out, ast.parse(tasklet.expr_source,
                                                          mode="eval")))
    return _Candidate(state, index, state.map_entries[0], infos, a, b,
                      top_puts, bottom_puts)


# ---------------------------- chunk construction -------------------------------


def _build_chunk_state(sdfg: SDFG, cand: _Candidate, symbols: set[str],
                       lo: Expr, hi: Expr, suffix: str, group: str) -> State:
    src_state = cand.state
    state = State(f"{src_state.name}_{suffix}", src_state.schedule)
    state.overlap_group = group
    entry = state.add_node(MapEntry(
        f"{cand.entry.label}_{suffix}", list(cand.entry.params),
        [(lo, hi), *cand.entry.ranges[1:]]))
    exit_ = state.add_node(MapExit(entry))
    seen_reads: dict[tuple, AccessNode] = {}
    for info in cand.tasklets:
        rewriter = _ChunkRewriter(sdfg, symbols, cand.a, cand.b, lo, hi)
        tree = rewriter.visit(ast.parse(info.tasklet.expr_source, mode="eval"))
        source = ast.unparse(ast.fix_missing_locations(tree))
        tasklet = state.add_node(Tasklet(
            f"{info.tasklet.label}_{suffix}", source,
            inputs=[m.data for m in rewriter.reads], output=info.tasklet.output))
        tasklet.is_copy = getattr(info.tasklet, "is_copy", False)
        for memlet in rewriter.reads:
            key = (memlet.data, memlet.subset)
            access = seen_reads.get(key)
            if access is None:
                access = seen_reads[key] = state.add_node(AccessNode(memlet.data))
                state.add_edge(access, entry, memlet)
        state.add_edge(entry, tasklet)
        state.add_edge(tasklet, exit_)
        out_access = state.add_node(AccessNode(info.out_memlet.data))
        out_memlet = Memlet(info.out_memlet.data,
                            (Range(lo, hi), *info.out_memlet.subset[1:]))
        state.add_edge(exit_, out_access, out_memlet)
    return state


def _apply(sdfg: SDFG, loop: LoopRegion, cand: _Candidate,
           symbols: set[str], chunks: int) -> int:
    """Splice the chunked schedule into the loop; returns the number of
    elements now occupying the original state's position."""
    group = f"overlap:{cand.state.name}"
    a, b = cand.a, cand.b
    top = _build_chunk_state(sdfg, cand, symbols, a, _fold("+", a, 1),
                             "ov_top", group)
    bottom = _build_chunk_state(sdfg, cand, symbols, _fold("-", b, 1), b,
                                "ov_bot", group)
    interior_lo = _fold("+", a, 1)
    length = _fold("-", _fold("-", b, a), 2)
    interiors = []
    for j in range(chunks):
        c_lo = _fold("+", interior_lo, _fold("//", _fold("*", j, length), chunks))
        c_hi = _fold("+", interior_lo,
                     _fold("//", _fold("*", j + 1, length), chunks))
        interiors.append(_build_chunk_state(sdfg, cand, symbols, c_lo, c_hi,
                                            f"ov_int{j}", group))
    for put_state in (*cand.top_puts, *cand.bottom_puts):
        put_state.overlap_group = group
        loop.elements.remove(put_state)
    sequence = [top, *cand.top_puts, bottom, *cand.bottom_puts, *interiors]
    index = loop.elements.index(cand.state)
    loop.elements[index:index + 1] = sequence
    return len(sequence)


# ---------------------------- entry point --------------------------------------


def _model_chunks(cost) -> int:
    """Interior chunk count from the calibrated cost model: as many
    chunks as fit before per-chunk scheduling overhead (device loop
    turn + block sync) adds up to one grid sync — the barrier the
    relaxation removed — capped at 8 (diminishing returns past that on
    every calibrated part)."""
    per_chunk = cost.device_loop_overhead_us + cost.block_sync_us
    if per_chunk <= 0.0:
        return 8
    return max(2, min(8, int(cost.grid_sync_us / per_chunk)))


def auto_overlap(sdfg: SDFG, *, chunks: int | None = None, cost=None) -> int:
    """Rewrite halo-communicating compute maps into overlapped chunks.

    In-place; returns the number of maps rewritten.  ``chunks`` is the
    interior chunk count ``K`` (the two boundary chunks are always
    emitted); when omitted it is chosen by the calibrated cost model.
    Raises :class:`OverlapTransformError` when the SDFG has no loop, has
    communication-lint findings (only race-free SDFGs are tiled), has no
    overlappable map, or has a candidate map that is not tileable.
    """
    if cost is None:
        from repro.hw.calibration import DEFAULT_COST_MODEL
        cost = DEFAULT_COST_MODEL
    k = chunks if chunks is not None else _model_chunks(cost)
    if k < 1:
        raise OverlapTransformError(f"chunk count must be >= 1, got {k}")
    loops = sdfg.loop_regions()
    if not loops:
        raise OverlapTransformError(
            "no loop region: auto-overlap tiles compute maps of a time loop")
    findings = lint_communication(sdfg)
    if findings:
        raise OverlapTransformError(
            "communication lint findings block auto-overlap (only race-free "
            "SDFGs are tiled): " + findings[0].summary())
    symbols = _scalar_symbols(sdfg)
    rewritten = 0
    for loop in loops:
        loop_rewrites = 0
        i = 0
        while i < len(loop.elements):
            el = loop.elements[i]
            if isinstance(el, State) and el.tasklets and el.map_entries:
                cand = _find_candidate(sdfg, loop, i, symbols)
                if cand is not None:
                    i += _apply(sdfg, loop, cand, symbols, k)
                    loop_rewrites += 1
                    continue
            i += 1
        if loop_rewrites and loop.schedule is Schedule.GPU_PERSISTENT:
            # recompute the relaxed barrier schedule over the new state
            # sequence (the overlap_group tag elides barriers between
            # chunks) and refresh the TB-group partition if specialized
            _transform_loop(loop, relax_barriers=True)
            if getattr(loop, "comm_specialized", False):
                _partition_comm_states(loop)
        rewritten += loop_rewrites
    if rewritten == 0:
        raise OverlapTransformError(
            "no overlappable compute map: need a tileable map whose boundary "
            "rows feed later put states in the same loop body")
    return rewritten
