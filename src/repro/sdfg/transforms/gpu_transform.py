"""GPUTransform: port a CPU SDFG to discrete GPU execution.

The ``GPUTransformSDFG`` analogue used in §6.2.1 to "trivially port
[the CPU benchmarks] to CUDA for fair comparison": every compute state
becomes a GPU kernel (one launch per state per iteration) and every
non-transient array moves to device global memory.  Communication
library nodes stay host-side — that is precisely the baseline the
paper measures against.
"""

from __future__ import annotations

from repro.hw.memory import Storage
from repro.sdfg.graph import SDFG, Schedule

__all__ = ["gpu_transform"]


def gpu_transform(sdfg: SDFG) -> SDFG:
    """In-place transformation; returns the same SDFG for chaining."""
    for desc in sdfg.arrays.values():
        if desc.storage is Storage.HOST:
            desc.storage = Storage.GLOBAL
    for state in sdfg.walk_states():
        if state.schedule is Schedule.CPU:
            state.schedule = Schedule.GPU_DEVICE
    return sdfg
