"""MPIToNVSHMEM: lower host MPI nodes to GPU-initiated NVSHMEM nodes.

The conversion of §6.2.1: "Send calls are replaced with signaled
Putmem*, and Recv calls are replaced with SignalWait* nodes.  We
additionally omit global MPI barriers such as Waitall in favor of more
granular flag-based synchronization."

Matching uses SPMD symmetry.  ``my Isend(X, p, tag)`` lands in the
peer's memory at the location named by the *conjugate* receive — the
``Irecv(Y, q, tag)`` in the same program with ``q = conjugates[p]``
(e.g. what I send to my north-west neighbor, they receive from their
south-east).  The transform therefore needs the conjugate-parameter
map and rewrites each matched pair to::

    Isend(X, p, tag)  ->  PutmemSignal(dst=Y, src=X, flags[k], t, p)
    Irecv(Y, q, tag)  ->  SignalWait(flags[k], t)
    Waitall()         ->  (removed)

where ``k`` is a fresh flag per pair and ``t`` the enclosing loop
variable (the iteration semaphore of §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.memory import Storage
from repro.sdfg.graph import LoopRegion, Region, SDFG, State
from repro.sdfg.libnodes.mpi import MPIIrecv, MPIIsend, MPIWaitall
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.nodes import AccessNode
from repro.sdfg.symbols import Sym

__all__ = ["FLAGS_ARRAY", "MPIToNVSHMEMError", "mpi_to_nvshmem"]

#: name of the symmetric signal array the transform allocates
FLAGS_ARRAY = "__nvshmem_flags"


class MPIToNVSHMEMError(ValueError):
    """An MPI node could not be lowered (unmatched send/recv)."""


@dataclass
class _Found:
    state: State
    node: MPIIsend | MPIIrecv | MPIWaitall
    region: Region
    index: int


def mpi_to_nvshmem(
    sdfg: SDFG,
    conjugates: dict[str, str],
    *,
    nbi: bool = True,
    implementation: str = "auto",
) -> SDFG:
    """In-place lowering; ``conjugates`` maps each peer parameter to
    the opposite-direction parameter (``{"nw": "ne", "ne": "nw"}``).

    ``nbi=False`` emits blocking put variants; ``implementation``
    selects the put specialization (``"auto"`` shape dispatch or
    ``"mapped"`` per-element p, §5.3.2)."""
    for param, conj in conjugates.items():
        if conjugates.get(conj) != param:
            raise MPIToNVSHMEMError(f"conjugate map is not an involution at {param!r}")

    sends: list[_Found] = []
    recvs: list[_Found] = []
    waits: list[_Found] = []
    loops: dict[int, str] = {}

    def scan(region: Region, loop_var: str | None) -> None:
        for index, el in enumerate(region.elements):
            if isinstance(el, LoopRegion):
                scan(el, el.var)
            elif isinstance(el, State):
                for node in el.library_nodes:
                    found = _Found(el, node, region, index)
                    if isinstance(node, MPIIsend):
                        sends.append(found)
                    elif isinstance(node, MPIIrecv):
                        recvs.append(found)
                    elif isinstance(node, MPIWaitall):
                        waits.append(found)
                if el.library_nodes and loop_var is not None:
                    loops[id(el)] = loop_var

    scan(sdfg.body, None)

    if not sends and not recvs:
        return sdfg

    # pair sends with conjugate receives
    unmatched = list(recvs)
    flag_counter = 0
    for send in sends:
        node = send.node
        assert isinstance(node, MPIIsend)
        if isinstance(node.dest, str):
            want_source = conjugates.get(node.dest)
            if want_source is None:
                raise MPIToNVSHMEMError(f"no conjugate for peer parameter {node.dest!r}")
        else:
            want_source = node.dest  # integer peers match literally
        match = next(
            (r for r in unmatched
             if r.node.tag == node.tag and r.node.source == want_source),
            None,
        )
        if match is None:
            raise MPIToNVSHMEMError(
                f"Isend(tag={node.tag}, dest={node.dest}) has no conjugate "
                f"Irecv(source={want_source})"
            )
        unmatched.remove(match)
        loop_var = loops.get(id(send.state))
        if loop_var is None:
            raise MPIToNVSHMEMError("communication outside a time loop is unsupported")
        value = Sym(loop_var)
        flag = flag_counter
        flag_counter += 1

        # rewrite the send state: Isend -> PutmemSignal
        put = PutmemSignal(
            dst=match.node.buffer, src=node.buffer,
            flag_index=flag, signal_value=value, pe=node.dest, nbi=nbi,
            implementation=implementation,
        )
        _replace_node(send.state, node, put, keep_read=node.buffer)

        # rewrite the recv state: Irecv -> SignalWait; remember the
        # source parameter so edge ranks (PROC_NULL peers) skip the wait
        wait = SignalWait(flag_index=flag, value=value)
        wait.peer_param = match.node.source
        _replace_node(match.state, match.node, wait, keep_read=None)

    if unmatched:
        first = unmatched[0].node
        raise MPIToNVSHMEMError(
            f"Irecv(tag={first.tag}, source={first.source}) has no conjugate Isend"
        )

    # drop Waitall states entirely (granular flag sync supersedes them)
    for wait in waits:
        wait.region.elements.remove(wait.state)

    # allocate the symmetric flag array
    if flag_counter and FLAGS_ARRAY not in sdfg.arrays:
        sdfg.add_array(FLAGS_ARRAY, (flag_counter,), dtype=np.int64,
                       storage=Storage.SYMMETRIC, transient=True)
    return sdfg


def _replace_node(state: State, old, new, keep_read) -> None:
    """Swap a library node, preserving the buffer-read edge if any."""
    state.nodes = [new if n is old else n for n in state.nodes]
    new_edges = []
    for edge in state.edges:
        src = new if edge.src is old else edge.src
        dst = new if edge.dst is old else edge.dst
        if keep_read is None and (src is new or dst is new):
            continue  # waits carry no dataflow edges
        new_edges.append(type(edge)(src, dst, edge.memlet))
    state.edges = new_edges
    if keep_read is None:
        state.nodes = [n for n in state.nodes
                       if not (isinstance(n, AccessNode) and not state.in_edges(n)
                               and not state.out_edges(n))]
    state.name = state.name.replace("mpi_", "nvshmem_")
