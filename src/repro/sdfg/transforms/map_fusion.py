"""MapFusion: merge adjacent compatible compute states.

The auto-optimizer pass applied to the baselines in §6.2.1.  Two
consecutive compute states fuse when their maps span identical ranges
and fusing cannot change semantics: the second state must either not
read anything the first writes, or read it with *exactly* the subset
the first wrote (a point-wise producer/consumer chain).  Fused states
execute as one kernel — one launch instead of two.
"""

from __future__ import annotations

from repro.sdfg.graph import Region, SDFG, State
from repro.sdfg.nodes import AccessNode, MapEntry

__all__ = ["map_fusion"]


def map_fusion(sdfg: SDFG) -> int:
    """In-place; returns the number of fusions performed."""
    total = 0
    for region in sdfg.walk_regions():
        total += _fuse_in_region(region)
    return total


def _fuse_in_region(region: Region) -> int:
    fused = 0
    i = 0
    while i + 1 < len(region.elements):
        first, second = region.elements[i], region.elements[i + 1]
        if (isinstance(first, State) and isinstance(second, State)
                and _fusable(first, second)):
            _merge(first, second)
            del region.elements[i + 1]
            fused += 1
        else:
            i += 1
    return fused


def _fusable(a: State, b: State) -> bool:
    if a.library_nodes or b.library_nodes:
        return False
    ma, mb = a.map_entries, b.map_entries
    if len(ma) != 1 or len(mb) != 1:
        return False
    if ma[0].ranges != mb[0].ranges:
        return False
    if a.schedule != b.schedule:
        return False
    overlap = a.writes() & b.reads()
    if not overlap:
        return True
    # point-wise chains only: b must read a's outputs with the written subset
    written = {
        e.memlet.data: e.memlet for e in a.edges
        if isinstance(e.dst, AccessNode) and e.memlet is not None
    }
    for edge in b.edges:
        memlet = edge.memlet
        if memlet is None or memlet.data not in overlap:
            continue
        if not isinstance(edge.src, AccessNode):
            continue
        if written.get(memlet.data) and written[memlet.data].subset != memlet.subset:
            return False
    return True


def _merge(a: State, b: State) -> None:
    """Append b's dataflow into a (tasklets run in order within the
    fused kernel).  The second map scope is dropped; its tasklet joins
    the first scope."""
    entry_a = a.map_entries[0]
    entry_b = b.map_entries[0]
    exit_b = next(n for n in b.nodes if getattr(n, "entry", None) is entry_b)
    for node in b.nodes:
        if node is entry_b or node is exit_b:
            continue
        a.add_node(node)
    exit_a = next(n for n in a.nodes if getattr(n, "entry", None) is entry_a)
    for edge in b.edges:
        src = edge.src
        dst = edge.dst
        if src is entry_b:
            src = entry_a
        if dst is entry_b:
            dst = entry_a
        if src is exit_b:
            src = exit_a
        if dst is exit_b:
            dst = exit_a
        a.add_edge(src, dst, edge.memlet)
    a.name = f"{a.name}+{b.name}"
