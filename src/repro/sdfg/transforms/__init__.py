"""Pattern-matching transformations (paper §2.3 / Chapter 5).

The CPU-Free pipeline of §6.2.1 is::

    sdfg = prog.to_sdfg()
    gpu_transform(sdfg)          # port to CUDA (baseline stops here)
    map_fusion(sdfg)             # fuse compatible maps
    mpi_to_nvshmem(sdfg, conj)   # Isend->PutmemSignal, Irecv->SignalWait
    nvshmem_array(sdfg)          # storage -> GPU_NVSHMEM (symmetric)
    gpu_persistent_kernel(sdfg)  # fuse the time loop into one kernel
"""

from repro.sdfg.transforms.gpu_transform import gpu_transform
from repro.sdfg.transforms.map_fusion import map_fusion
from repro.sdfg.transforms.mpi_to_nvshmem import mpi_to_nvshmem
from repro.sdfg.transforms.nvshmem_array import nvshmem_array
from repro.sdfg.transforms.overlap import OverlapTransformError, auto_overlap
from repro.sdfg.transforms.persistent import gpu_persistent_kernel

__all__ = [
    "OverlapTransformError",
    "auto_overlap",
    "gpu_persistent_kernel",
    "gpu_transform",
    "map_fusion",
    "mpi_to_nvshmem",
    "nvshmem_array",
]
