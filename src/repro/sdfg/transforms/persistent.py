"""GPUPersistentKernel: fuse a time loop into one persistent kernel.

Paper §5.1: DaCe's transformation fuses a GPU subgraph into a single
persistent kernel, scheduling states conservatively — branches and
state transitions run "in a single thread followed by a grid-wide
barrier when global memory is accessed".  This work *relaxes* the
barrier generation, "limiting it to subgraph edges": a grid sync is
emitted between consecutive states only when the later state actually
depends on data the earlier one produced (or on communication
completion).

We record the decision as ``state.sync_after`` flags that both code
generators honor.
"""

from __future__ import annotations

from repro.sdfg.graph import LoopRegion, SDFG, Schedule, State
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait

__all__ = ["PersistentTransformError", "gpu_persistent_kernel"]


class PersistentTransformError(ValueError):
    """The loop cannot be fused into a persistent kernel."""


def gpu_persistent_kernel(
    sdfg: SDFG,
    *,
    relax_barriers: bool = True,
    specialize_comm: bool = False,
) -> SDFG:
    """In-place: schedule every time loop persistently.

    Requires a prior ``gpu_transform`` (all states on the GPU) and —
    if the program communicates — a prior ``mpi_to_nvshmem`` (host MPI
    cannot run inside a device kernel; validation enforces this).

    ``specialize_comm=True`` implements the paper's §5.4 *future work*:
    thread-block specialization for generated code.  Communication
    states (NVSHMEM library nodes) are assigned to a dedicated TB
    group that runs concurrently with the compute states' group, with
    a grid-wide synchronization only at the loop back-edge — the same
    overlap structure as the hand-written CPU-Free stencil (§4.1.2).
    The flag is recorded as ``loop.comm_specialized`` and honored by
    the executor backend.
    """
    loops = sdfg.loop_regions()
    if not loops:
        raise PersistentTransformError("no loop region to make persistent")
    for loop in loops:
        _transform_loop(loop, relax_barriers)
        loop.comm_specialized = specialize_comm
        if specialize_comm:
            _partition_comm_states(loop)
    return sdfg


def _partition_comm_states(loop: LoopRegion) -> None:
    """Tag each state with its TB group ("comm" or "comp").

    A state is communication if it contains only NVSHMEM library nodes
    (no tasklets); mixed states stay in the compute group.  Dependent
    compute must still observe communicated data: the wait states keep
    their ``sync_after`` barriers so the groups rendezvous exactly
    where the dataflow requires it.
    """
    for state in loop.walk_states():
        is_comm = bool(state.library_nodes) and not state.tasklets
        state.tb_group = "comm" if is_comm else "comp"


def _transform_loop(loop: LoopRegion, relax_barriers: bool) -> None:
    states = list(loop.walk_states())
    for state in states:
        if state.schedule is Schedule.CPU:
            raise PersistentTransformError(
                f"state {state.name} is CPU-scheduled; run gpu_transform first"
            )
    loop.schedule = Schedule.GPU_PERSISTENT
    for state in states:
        state.schedule = Schedule.GPU_PERSISTENT

    elements = [el for el in loop.elements if isinstance(el, State)]
    for i, state in enumerate(elements):
        if not relax_barriers:
            state.sync_after = True
            continue
        nxt = elements[(i + 1) % len(elements)] if elements else None
        state.sync_after = _needs_barrier(state, nxt)
    # the loop back-edge always synchronizes (temporal dependency between
    # time steps, §3.1.2)
    if elements:
        elements[-1].sync_after = True


def _needs_barrier(state: State, nxt: State | None) -> bool:
    """Subgraph-edge rule: barrier only when the next state consumes
    this state's products (or around communication nodes, whose
    device-wide visibility the barrier publishes)."""
    if nxt is None:
        return True
    group = getattr(state, "overlap_group", None)
    if group is not None and group == getattr(nxt, "overlap_group", None):
        # chunks of one auto-overlapped map (transforms.overlap) write
        # disjoint row blocks, and their eager puts read only rows the
        # preceding chunk already produced — the transform certifies
        # this, so no grid-wide rendezvous is needed inside the group
        return False
    if any(isinstance(n, (PutmemSignal, SignalWait)) for n in state.nodes):
        # communication scheduled in a single thread needs the grid to
        # observe completion before dependent compute (§5.3.2)
        return bool(state.writes() & nxt.reads()) or isinstance(
            next(iter(state.library_nodes), None), SignalWait
        )
    produced = state.writes()
    consumed = nxt.reads() | nxt.writes()
    return bool(produced & consumed)
