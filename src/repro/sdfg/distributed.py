"""SPMD launch helpers: decompose a global domain into per-rank
arguments for the SDFG executor, and reassemble results.

The 1-D benchmark uses slab decomposition (two neighbors); the 2-D
benchmark uses a process grid from
:func:`repro.stencil.grid.best_process_grid`, which is square at P=4
and rectangular at P∈{2, 8} — the source of the baseline's unbalanced
partition bump in Fig. 6.3b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sdfg.libnodes.mpi import MPI_PROC_NULL
from repro.stencil.grid import slab_partition, wide_process_grid

__all__ = ["GridDecomposition2D", "SlabDecomposition1D", "SlabDecomposition3D"]


@dataclass(frozen=True)
class SlabDecomposition1D:
    """1-D array of ``n_global`` interior points over ``ranks`` slabs."""

    n_global: int
    ranks: int

    def __post_init__(self) -> None:
        if self.n_global < self.ranks:
            raise ValueError("domain too small")

    def local_n(self, rank: int) -> int:
        lo, hi = slab_partition(self.n_global, self.ranks)[rank]
        return (hi - lo) + 2  # interior + 2 halo cells

    def rank_params(self, tsteps: int) -> list[dict]:
        """Scalar executor arguments per rank (no array data) — the
        timing-only sweeps use these directly and skip allocating the
        global domain entirely."""
        ranges = slab_partition(self.n_global, self.ranks)
        return [{
            "N": (hi - lo) + 2,  # interior + 2 halo cells
            "TSTEPS": tsteps,
            "nw": rank - 1 if rank > 0 else MPI_PROC_NULL,
            "ne": rank + 1 if rank < self.ranks - 1 else MPI_PROC_NULL,
        } for rank, (lo, hi) in enumerate(ranges)]

    def rank_args(self, u0: np.ndarray, tsteps: int) -> list[dict]:
        """Executor arguments per rank for the jacobi_1d program.

        ``u0`` has ``n_global + 2`` entries (interior + Dirichlet ends).
        """
        if u0.shape != (self.n_global + 2,):
            raise ValueError(f"u0 must have {self.n_global + 2} entries")
        ranges = slab_partition(self.n_global, self.ranks)
        args = self.rank_params(tsteps)
        for params, (lo, hi) in zip(args, ranges):
            chunk = np.array(u0[lo : hi + 2])  # includes halo cells
            params.update(A=chunk, B=np.array(chunk))
        return args

    def gather(self, arrays: list[dict[str, np.ndarray]], u0: np.ndarray,
               which: str = "A") -> np.ndarray:
        out = np.array(u0)
        for rank, (lo, hi) in enumerate(slab_partition(self.n_global, self.ranks)):
            out[lo + 1 : hi + 1] = arrays[rank][which][1:-1]
        return out


@dataclass(frozen=True)
class SlabDecomposition3D:
    """z-axis slab decomposition for the jacobi_3d program.

    ``nz_global`` interior planes of edge ``m`` (the full local arrays
    are ``(planes + 2, m + 2, m + 2)`` with one halo plane per side).
    Plane counts must divide evenly: NVSHMEM symmetric allocation in
    the executor requires identical local shapes.
    """

    nz_global: int
    m: int
    ranks: int

    def __post_init__(self) -> None:
        if self.nz_global % self.ranks:
            raise ValueError(
                f"{self.nz_global} planes not divisible by {self.ranks} ranks"
            )

    @property
    def planes(self) -> int:
        return self.nz_global // self.ranks

    def rank_params(self, tsteps: int) -> list[dict]:
        """Scalar executor arguments per rank (no array data)."""
        return [{
            "N": self.planes + 2,
            "M": self.m + 2,
            "TSTEPS": tsteps,
            "nw": rank - 1 if rank > 0 else MPI_PROC_NULL,
            "ne": rank + 1 if rank < self.ranks - 1 else MPI_PROC_NULL,
        } for rank in range(self.ranks)]

    def rank_args(self, u0: np.ndarray, tsteps: int) -> list[dict]:
        expected = (self.nz_global + 2, self.m + 2, self.m + 2)
        if u0.shape != expected:
            raise ValueError(f"u0 must be {expected}")
        args = self.rank_params(tsteps)
        for rank, params in enumerate(args):
            lo = rank * self.planes
            chunk = np.array(u0[lo : lo + self.planes + 2])
            params.update(A=chunk, B=np.array(chunk))
        return args

    def gather(self, arrays: list[dict[str, np.ndarray]], u0: np.ndarray,
               which: str = "A") -> np.ndarray:
        out = np.array(u0)
        for rank in range(self.ranks):
            lo = rank * self.planes + 1
            out[lo : lo + self.planes] = arrays[rank][which][1:-1]
        return out


@dataclass(frozen=True)
class GridDecomposition2D:
    """2-D process grid over a ``(gy, gx)`` interior."""

    gy: int
    gx: int
    ranks: int

    def __post_init__(self) -> None:
        py, px = self.grid
        if self.gy % py or self.gx % px:
            raise ValueError(
                f"interior {self.gy}x{self.gx} not divisible by process grid {py}x{px}"
            )

    @property
    def grid(self) -> tuple[int, int]:
        return wide_process_grid(self.ranks)

    @property
    def tile(self) -> tuple[int, int]:
        py, px = self.grid
        return self.gy // py, self.gx // px

    def coords(self, rank: int) -> tuple[int, int]:
        _, px = self.grid
        return divmod(rank, px)

    def neighbors(self, rank: int) -> dict[str, int]:
        py, px = self.grid
        ry, rx = self.coords(rank)
        return {
            "nn": rank - px if ry > 0 else MPI_PROC_NULL,
            "ns": rank + px if ry < py - 1 else MPI_PROC_NULL,
            "nw": rank - 1 if rx > 0 else MPI_PROC_NULL,
            "ne": rank + 1 if rx < px - 1 else MPI_PROC_NULL,
        }

    def rank_params(self, tsteps: int) -> list[dict]:
        """Scalar executor arguments per rank (no array data)."""
        th, tw = self.tile
        return [{
            "N": th + 2,
            "M": tw + 2,
            "TSTEPS": tsteps,
            **self.neighbors(rank),
        } for rank in range(self.ranks)]

    def rank_args(self, u0: np.ndarray, tsteps: int) -> list[dict]:
        """Executor arguments per rank for the jacobi_2d program.

        ``u0`` is ``(gy + 2, gx + 2)`` including the Dirichlet ring.
        """
        if u0.shape != (self.gy + 2, self.gx + 2):
            raise ValueError(f"u0 must be {(self.gy + 2, self.gx + 2)}")
        th, tw = self.tile
        args = self.rank_params(tsteps)
        for rank, params in enumerate(args):
            ry, rx = self.coords(rank)
            lo_y, lo_x = ry * th, rx * tw
            chunk = np.array(u0[lo_y : lo_y + th + 2, lo_x : lo_x + tw + 2])
            params.update(A=chunk, B=np.array(chunk))
        return args

    def gather(self, arrays: list[dict[str, np.ndarray]], u0: np.ndarray,
               which: str = "A") -> np.ndarray:
        out = np.array(u0)
        th, tw = self.tile
        for rank in range(self.ranks):
            ry, rx = self.coords(rank)
            lo_y, lo_x = ry * th + 1, rx * tw + 1
            out[lo_y : lo_y + th, lo_x : lo_x + tw] = arrays[rank][which][1:-1, 1:-1]
        return out
