"""SDFG structural validation.

Run after construction and after every transformation; catches the
mistakes the real tools catch: dangling memlets, dimension mismatches,
NVSHMEM nodes on non-symmetric storage, persistent regions containing
host-scheduled states, duplicate flag waits.
"""

from __future__ import annotations

from repro.hw.memory import Storage
from repro.sdfg.graph import LoopRegion, Region, SDFG, Schedule, State
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet

__all__ = ["SDFGValidationError", "validate"]


class SDFGValidationError(ValueError):
    """The SDFG violates a structural invariant."""


def validate(sdfg: SDFG) -> None:
    """Raise :class:`SDFGValidationError` on the first violation."""
    for state in sdfg.walk_states():
        _validate_state(sdfg, state)
    _validate_signal_pairing(sdfg)
    for region in sdfg.walk_regions():
        if region.schedule is Schedule.GPU_PERSISTENT:
            _validate_persistent_region(sdfg, region)


def _validate_signal_pairing(sdfg: SDFG) -> None:
    """Every :class:`SignalWait` must have a producer: some
    :class:`PutmemSignal` in the program that updates its flag index.

    A wait whose flag nobody ever signals is the canonical generated-
    code deadlock (the §4.1.1 semaphore protocol with one leg missing);
    it is a structural property visible before any execution, so it is
    rejected here rather than left for the watchdog to time out on.
    """
    produced = {
        node.flag_index
        for state in sdfg.walk_states()
        for node in state.library_nodes
        if isinstance(node, PutmemSignal) and node.flag_index is not None
    }
    for state in sdfg.walk_states():
        for node in state.library_nodes:
            if isinstance(node, SignalWait) and node.flag_index not in produced:
                raise SDFGValidationError(
                    f"state {state.name}: SignalWait on flag {node.flag_index} "
                    f"has no producer — no PutmemSignal in the program updates "
                    f"that flag index (produced: {sorted(produced) or 'none'}); "
                    f"the wait can never be satisfied"
                )


def _validate_state(sdfg: SDFG, state: State) -> None:
    for node in state.nodes:
        if isinstance(node, AccessNode) and node.data not in sdfg.arrays:
            raise SDFGValidationError(
                f"state {state.name}: access node for undeclared array {node.data!r}"
            )
        if isinstance(node, MapExit) and node.entry not in state.nodes:
            raise SDFGValidationError(
                f"state {state.name}: MapExit without its MapEntry"
            )
    for edge in state.edges:
        if edge.memlet is not None:
            _validate_memlet(sdfg, state, edge.memlet)
    for node in state.library_nodes:
        if isinstance(node, PutmemSignal):
            # dst first: a put *targeting* private storage is the worse
            # bug (a one-sided write the owner cannot see coming), so
            # name the side in the diagnostic.
            for side, memlet in (("dst", node.dst), ("src", node.src)):
                _validate_memlet(sdfg, state, memlet)
                desc = sdfg.arrays[memlet.data]
                if desc.storage is not Storage.SYMMETRIC:
                    raise SDFGValidationError(
                        f"state {state.name}: NVSHMEM put {side} {memlet.data!r} "
                        f"has storage {desc.storage.value}; run NVSHMEMArray first "
                        f"(needs {Storage.SYMMETRIC.value})"
                    )
    # one tasklet per map scope in this restricted IR
    if len(state.map_entries) > 1:
        raise SDFGValidationError(
            f"state {state.name}: multiple map scopes in one state are not supported"
        )


def _validate_memlet(sdfg: SDFG, state: State, memlet: Memlet) -> None:
    desc = sdfg.arrays.get(memlet.data)
    if desc is None:
        raise SDFGValidationError(
            f"state {state.name}: memlet over undeclared array {memlet.data!r}"
        )
    if len(memlet.subset) != desc.ndim:
        raise SDFGValidationError(
            f"state {state.name}: memlet {memlet!r} has {len(memlet.subset)} dims, "
            f"array {memlet.data!r} has {desc.ndim}"
        )


def _validate_persistent_region(sdfg: SDFG, region: Region) -> None:
    if not isinstance(region, LoopRegion):
        raise SDFGValidationError("GPU_PERSISTENT schedule is only valid on loop regions")
    for state in region.walk_states():
        if state.schedule is not Schedule.GPU_PERSISTENT:
            raise SDFGValidationError(
                f"persistent region contains non-persistent state {state.name} "
                f"({state.schedule.value})"
            )
        for node in state.tasklets:
            pass  # tasklets are device-executable by construction
        for node in state.library_nodes:
            if node.library == "MPI":
                raise SDFGValidationError(
                    f"persistent region contains host MPI node in state {state.name}; "
                    f"run MPIToNVSHMEM first"
                )
