"""SDFG structural validation.

Run after construction and after every transformation; catches the
mistakes the real tools catch: dangling memlets, dimension mismatches,
NVSHMEM nodes on non-symmetric storage, persistent regions containing
host-scheduled states, duplicate flag waits.
"""

from __future__ import annotations

from repro.hw.memory import Storage
from repro.sdfg.graph import LoopRegion, Region, SDFG, Schedule, State
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet

__all__ = ["SDFGValidationError", "validate"]


class SDFGValidationError(ValueError):
    """The SDFG violates a structural invariant."""


def validate(sdfg: SDFG) -> None:
    """Raise :class:`SDFGValidationError` on the first violation."""
    for state in sdfg.walk_states():
        _validate_state(sdfg, state)
    for region in sdfg.walk_regions():
        if region.schedule is Schedule.GPU_PERSISTENT:
            _validate_persistent_region(sdfg, region)


def _validate_state(sdfg: SDFG, state: State) -> None:
    for node in state.nodes:
        if isinstance(node, AccessNode) and node.data not in sdfg.arrays:
            raise SDFGValidationError(
                f"state {state.name}: access node for undeclared array {node.data!r}"
            )
        if isinstance(node, MapExit) and node.entry not in state.nodes:
            raise SDFGValidationError(
                f"state {state.name}: MapExit without its MapEntry"
            )
    for edge in state.edges:
        if edge.memlet is not None:
            _validate_memlet(sdfg, state, edge.memlet)
    for node in state.library_nodes:
        if isinstance(node, PutmemSignal):
            for memlet in (node.src, node.dst):
                _validate_memlet(sdfg, state, memlet)
                desc = sdfg.arrays[memlet.data]
                if desc.storage is not Storage.SYMMETRIC:
                    raise SDFGValidationError(
                        f"state {state.name}: NVSHMEM node accesses {memlet.data!r} "
                        f"with storage {desc.storage.value}; run NVSHMEMArray first "
                        f"(needs {Storage.SYMMETRIC.value})"
                    )
    # one tasklet per map scope in this restricted IR
    if len(state.map_entries) > 1:
        raise SDFGValidationError(
            f"state {state.name}: multiple map scopes in one state are not supported"
        )


def _validate_memlet(sdfg: SDFG, state: State, memlet: Memlet) -> None:
    desc = sdfg.arrays.get(memlet.data)
    if desc is None:
        raise SDFGValidationError(
            f"state {state.name}: memlet over undeclared array {memlet.data!r}"
        )
    if len(memlet.subset) != desc.ndim:
        raise SDFGValidationError(
            f"state {state.name}: memlet {memlet!r} has {len(memlet.subset)} dims, "
            f"array {memlet.data!r} has {desc.ndim}"
        )


def _validate_persistent_region(sdfg: SDFG, region: Region) -> None:
    if not isinstance(region, LoopRegion):
        raise SDFGValidationError("GPU_PERSISTENT schedule is only valid on loop regions")
    for state in region.walk_states():
        if state.schedule is not Schedule.GPU_PERSISTENT:
            raise SDFGValidationError(
                f"persistent region contains non-persistent state {state.name} "
                f"({state.schedule.value})"
            )
        for node in state.tasklets:
            pass  # tasklets are device-executable by construction
        for node in state.library_nodes:
            if node.library == "MPI":
                raise SDFGValidationError(
                    f"persistent region contains host MPI node in state {state.name}; "
                    f"run MPIToNVSHMEM first"
                )
