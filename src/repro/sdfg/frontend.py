"""Python frontend: restricted-subset parsing into SDFGs.

Supports the program shape of the paper's distributed stencil
benchmarks (Listings 5.1/5.2):

- array parameters annotated ``A: float64[N]`` / ``float64[N, M]``,
  scalar parameters annotated ``int32`` / ``int64``,
- ``for t in range(lo, hi):`` time loops,
- NumPy-semantics slice assignments ``B[1:-1] = (A[:-2] + ...) / 3.0``,
- MPI communication: ``comm.Isend(view, peer, tag)``,
  ``comm.Irecv(view, peer, tag)``, ``comm.Waitall()``,
  ``comm.Barrier()``,
- NVSHMEM communication (for hand-written CPU-Free programs):
  ``nvshmem.PutmemSignal(dst_view, src_view, flags[i], t, peer)``,
  ``nvshmem.SignalWait(flags[i], t)``.

``comm``, ``nvshmem`` and ``flags`` are *syntax*, resolved by the
parser — the function is never executed as Python.

Example::

    N = Sym("N")

    @program
    def jacobi(A: float64[N], B: float64[N], TSTEPS: int32,
               nw: int32, ne: int32):
        for t in range(1, TSTEPS):
            comm.Isend(A[1], nw, 2)
            ...
            B[1:-1] = (A[:-2] + A[1:-1] + A[2:]) / 3.0

    sdfg = jacobi.to_sdfg()
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.sdfg.graph import LoopRegion, Region, SDFG, State
from repro.sdfg.libnodes.mpi import MPIBarrier, MPIIrecv, MPIIsend, MPIWaitall
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.memlet import Memlet, Range, _FULL
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet
from repro.sdfg.symbols import BinOp, Expr, Sym

__all__ = ["ArrayType", "FrontendError", "float64", "int32", "int64", "program"]


class FrontendError(ValueError):
    """Unsupported construct in a @program function."""


@dataclass(frozen=True)
class ArrayType:
    """Annotation ``float64[N, M]``."""

    dtype: type
    shape: tuple[Expr, ...]


class _DType:
    """Annotation factory: ``float64[N]`` is an array, bare ``int32``
    is a scalar parameter."""

    def __init__(self, np_dtype: type) -> None:
        self.np_dtype = np_dtype

    def __getitem__(self, shape: Any) -> ArrayType:
        if not isinstance(shape, tuple):
            shape = (shape,)
        return ArrayType(self.np_dtype, shape)


float64 = _DType(np.float64)
int64 = _DType(np.int64)
int32 = _DType(np.int32)


def program(func):
    """Decorator: mark a restricted-Python function as a DaCe-style
    program; call ``.to_sdfg()`` to build the IR."""
    return PythonProgram(func)


class PythonProgram:
    """Deferred parser for a @program function."""

    def __init__(self, func) -> None:
        self.func = func
        self.__name__ = func.__name__
        self.__doc__ = func.__doc__

    def to_sdfg(self, name: str | None = None) -> SDFG:
        source = textwrap.dedent(inspect.getsource(self.func))
        tree = ast.parse(source)
        fndef = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
        sdfg = SDFG(name or self.func.__name__)
        builder = _Builder(sdfg, self.func)
        builder.declare_parameters(fndef)
        builder.build_region(fndef.body, sdfg.body, loop_vars=set())
        return sdfg


class _Builder:
    def __init__(self, sdfg: SDFG, func) -> None:
        self.sdfg = sdfg
        self.env = dict(func.__globals__)
        if func.__closure__:
            for name, cell in zip(func.__code__.co_freevars, func.__closure__):
                self.env[name] = cell.cell_contents
        # `from __future__ import annotations` stringifies annotations;
        # evaluate them against the function's environment
        self.annotations = {
            name: (eval(ann, self.env) if isinstance(ann, str) else ann)  # noqa: S307
            for name, ann in func.__annotations__.items()
        }
        self._state_counter = 0

    # -- declarations -----------------------------------------------------------

    def declare_parameters(self, fndef: ast.FunctionDef) -> None:
        for arg in fndef.args.args:
            ann = self.annotations.get(arg.arg)
            if isinstance(ann, ArrayType):
                self.sdfg.add_array(arg.arg, ann.shape, ann.dtype)
                for dim in ann.shape:
                    self._register_shape_symbols(dim)
            elif isinstance(ann, _DType):
                self.sdfg.add_param(arg.arg)
            else:
                raise FrontendError(
                    f"parameter {arg.arg!r} needs a float64[...]/int32 annotation"
                )

    def _register_shape_symbols(self, expr: Expr) -> None:
        if isinstance(expr, Sym):
            self.sdfg.add_symbol(expr.name)
        elif isinstance(expr, BinOp):
            self._register_shape_symbols(expr.lhs)
            self._register_shape_symbols(expr.rhs)

    # -- regions ---------------------------------------------------------------------

    def build_region(self, stmts: list[ast.stmt], region: Region, loop_vars: set[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.For):
                region.add(self._build_loop(stmt, loop_vars))
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                region.add(self._build_call_state(stmt.value, loop_vars))
            elif isinstance(stmt, ast.Assign):
                region.add(self._build_compute_state(stmt, loop_vars))
            elif isinstance(stmt, ast.AugAssign):
                region.add(self._build_compute_state(
                    self._desugar_augassign(stmt), loop_vars))
            elif isinstance(stmt, ast.Pass):
                continue
            else:
                raise FrontendError(
                    f"unsupported statement at line {stmt.lineno}: {ast.dump(stmt)[:80]}"
                )

    def _build_loop(self, node: ast.For, loop_vars: set[str]) -> LoopRegion:
        if not isinstance(node.target, ast.Name):
            raise FrontendError("loop target must be a simple name")
        call = node.iter
        if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
                and call.func.id == "range"):
            raise FrontendError("only 'for x in range(lo, hi)' loops supported")
        if len(call.args) == 1:
            lo: Expr = 0
            hi = self._to_expr(call.args[0], loop_vars)
        elif len(call.args) == 2:
            lo = self._to_expr(call.args[0], loop_vars)
            hi = self._to_expr(call.args[1], loop_vars)
        else:
            raise FrontendError("range() with step is not supported")
        loop = LoopRegion(node.target.id, lo, hi)
        self.build_region(node.body, loop, loop_vars | {node.target.id})
        return loop

    # -- compute states -----------------------------------------------------------------

    @staticmethod
    def _desugar_augassign(node: ast.AugAssign) -> ast.Assign:
        """Rewrite ``A[s] op= expr`` as ``A[s] = A[s] op (expr)``."""
        if not isinstance(node.target, ast.Subscript):
            raise FrontendError(
                f"line {node.lineno}: augmented assignment target must be a subscript"
            )
        read = ast.Subscript(value=node.target.value, slice=node.target.slice,
                             ctx=ast.Load())
        rhs = ast.BinOp(left=read, op=node.op, right=node.value)
        assign = ast.Assign(targets=[node.target], value=rhs)
        return ast.fix_missing_locations(ast.copy_location(assign, node))

    def _build_compute_state(self, node: ast.Assign, loop_vars: set[str]) -> State:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Subscript):
            raise FrontendError(
                f"line {node.lineno}: only single 'array[subset] = expr' assignments"
            )
        target = node.targets[0]
        if not isinstance(target.value, ast.Name):
            raise FrontendError("assignment target must be a named array")
        out_name = target.value.id
        self._check_array(out_name, node.lineno)
        out_memlet = Memlet(out_name, self._subset_dims(target, loop_vars))

        rhs_source = ast.unparse(node.value)
        read_memlets = self._collect_reads(node.value, loop_vars)

        state = self._new_state(f"compute_{out_name}")
        # map over the written subset
        ndim = len(out_memlet.subset)
        params = [f"__i{d}" for d in range(ndim)]
        shape = self.sdfg.arrays[out_name].shape
        ranges = []
        for d, dim in enumerate(out_memlet.subset):
            if isinstance(dim, Range):
                stop = shape[d] if dim.stop is _FULL else dim.stop
                ranges.append((dim.start, stop))
            else:
                ranges.append((dim, dim))
        entry = state.add_node(MapEntry(f"map_{out_name}", params, ranges))
        tasklet = state.add_node(
            Tasklet(f"t_{out_name}", rhs_source,
                    inputs=[m.data for m in read_memlets], output=out_name)
        )
        tasklet.is_copy = isinstance(node.value, (ast.Subscript, ast.Name))
        exit_ = state.add_node(MapExit(entry))
        out_access = state.add_node(AccessNode(out_name))
        for memlet in read_memlets:
            access = state.add_node(AccessNode(memlet.data))
            state.add_edge(access, entry, memlet)
        state.add_edge(entry, tasklet)
        state.add_edge(tasklet, exit_)
        state.add_edge(exit_, out_access, out_memlet)
        return state

    def _collect_reads(self, rhs: ast.expr, loop_vars: set[str]) -> list[Memlet]:
        memlets: list[Memlet] = []
        seen: set[str] = set()

        class Visitor(ast.NodeVisitor):
            def visit_Subscript(inner, node: ast.Subscript) -> None:  # noqa: N805
                if isinstance(node.value, ast.Name) and node.value.id in self.sdfg.arrays:
                    memlets.append(
                        Memlet(node.value.id, self._subset_dims(node, loop_vars))
                    )
                    seen.add(node.value.id)
                else:
                    inner.generic_visit(node)

            def visit_Name(inner, node: ast.Name) -> None:  # noqa: N805
                if node.id in self.sdfg.arrays and node.id not in seen:
                    desc = self.sdfg.arrays[node.id]
                    memlets.append(
                        Memlet(node.id, tuple(Range(0, _FULL) for _ in desc.shape))
                    )
                    seen.add(node.id)

        Visitor().visit(rhs)
        return memlets

    # -- library-call states --------------------------------------------------------------

    def _build_call_state(self, call: ast.Call, loop_vars: set[str]) -> State:
        if not (isinstance(call.func, ast.Attribute) and isinstance(call.func.value, ast.Name)):
            raise FrontendError(f"line {call.lineno}: unsupported call {ast.unparse(call)}")
        namespace = call.func.value.id
        op = call.func.attr
        if namespace == "comm":
            return self._build_mpi_state(op, call, loop_vars)
        if namespace == "nvshmem":
            return self._build_nvshmem_state(op, call, loop_vars)
        raise FrontendError(f"line {call.lineno}: unknown namespace {namespace!r}")

    def _build_mpi_state(self, op: str, call: ast.Call, loop_vars: set[str]) -> State:
        state = self._new_state(f"mpi_{op.lower()}")
        if op in ("Isend", "Irecv"):
            if len(call.args) != 3:
                raise FrontendError(f"comm.{op} takes (view, peer, tag)")
            memlet = self._view_to_memlet(call.args[0], loop_vars)
            peer = self._peer_arg(call.args[1])
            tag = self._int_arg(call.args[2])
            if op == "Isend":
                node = state.add_node(MPIIsend(memlet, peer, tag))
                access = state.add_node(AccessNode(memlet.data))
                state.add_edge(access, node, memlet)
            else:
                node = state.add_node(MPIIrecv(memlet, peer, tag))
                access = state.add_node(AccessNode(memlet.data))
                state.add_edge(node, access, memlet)
        elif op == "Waitall":
            state.add_node(MPIWaitall())
        elif op == "Barrier":
            state.add_node(MPIBarrier())
        else:
            raise FrontendError(f"unsupported MPI operation comm.{op}")
        return state

    def _build_nvshmem_state(self, op: str, call: ast.Call, loop_vars: set[str]) -> State:
        state = self._new_state(f"nvshmem_{op.lower()}")
        if op == "PutmemSignal":
            if len(call.args) != 5:
                raise FrontendError(
                    "nvshmem.PutmemSignal takes (dst_view, src_view, flag, value, pe)"
                )
            dst = self._view_to_memlet(call.args[0], loop_vars)
            src = self._view_to_memlet(call.args[1], loop_vars)
            flag_index = self._flag_index(call.args[2])
            value = self._to_expr(call.args[3], loop_vars)
            pe = self._peer_arg(call.args[4])
            node = state.add_node(PutmemSignal(dst, src, flag_index, value, pe))
            access = state.add_node(AccessNode(src.data))
            state.add_edge(access, node, src)
        elif op == "SignalWait":
            if len(call.args) != 2:
                raise FrontendError("nvshmem.SignalWait takes (flag, value)")
            flag_index = self._flag_index(call.args[0])
            value = self._to_expr(call.args[1], loop_vars)
            state.add_node(SignalWait(flag_index, value))
        else:
            raise FrontendError(f"unsupported NVSHMEM operation nvshmem.{op}")
        return state

    # -- argument helpers ---------------------------------------------------------------------

    def _view_to_memlet(self, node: ast.expr, loop_vars: set[str]) -> Memlet:
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            self._check_array(node.value.id, node.lineno)
            return Memlet(node.value.id, self._subset_dims(node, loop_vars))
        if isinstance(node, ast.Name):
            self._check_array(node.id, node.lineno)
            desc = self.sdfg.arrays[node.id]
            return Memlet(node.id, tuple(Range(0, _FULL) for _ in desc.shape))
        raise FrontendError(f"line {node.lineno}: expected an array view")

    def _subset_dims(self, node: ast.Subscript, loop_vars: set[str]) -> tuple:
        index = node.slice
        parts = index.elts if isinstance(index, ast.Tuple) else [index]
        dims = []
        for part in parts:
            if isinstance(part, ast.Slice):
                if part.step is not None:
                    raise FrontendError("strided slices (step != 1) not supported")
                lo = 0 if part.lower is None else self._to_expr(part.lower, loop_vars)
                hi = _FULL if part.upper is None else self._to_expr(part.upper, loop_vars)
                dims.append(Range(lo, hi))
            else:
                dims.append(self._to_expr(part, loop_vars))
        return tuple(dims)

    def _peer_arg(self, node: ast.expr) -> str | int:
        if isinstance(node, ast.Name):
            if node.id not in self.sdfg.params:
                raise FrontendError(f"peer {node.id!r} must be a scalar parameter")
            return node.id
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        raise FrontendError(f"line {node.lineno}: peer must be a parameter or int")

    def _int_arg(self, node: ast.expr) -> int:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        raise FrontendError(f"line {node.lineno}: expected an integer literal")

    def _flag_index(self, node: ast.expr) -> int:
        if (isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name)
                and node.value.id == "flags"):
            return self._int_arg(node.slice)
        raise FrontendError(f"line {node.lineno}: flag must be written as flags[<int>]")

    def _to_expr(self, node: ast.expr, loop_vars: set[str]) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, int):
                raise FrontendError(f"line {node.lineno}: indices must be integers")
            return node.value
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self._to_expr(node.operand, loop_vars)
            if isinstance(inner, int):
                return -inner
            return BinOp("-", 0, inner)
        if isinstance(node, ast.Name):
            if node.id in loop_vars or node.id in self.sdfg.params:
                return Sym(node.id)
            value = self.env.get(node.id)
            if isinstance(value, Sym):
                self.sdfg.add_symbol(value.name)
                return value
            if isinstance(value, int):
                return value
            raise FrontendError(f"line {node.lineno}: unknown name {node.id!r} in index")
        if isinstance(node, ast.BinOp):
            ops = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//"}
            op = ops.get(type(node.op))
            if op is None:
                raise FrontendError(f"line {node.lineno}: unsupported index operator")
            lhs = self._to_expr(node.left, loop_vars)
            rhs = self._to_expr(node.right, loop_vars)
            if isinstance(lhs, int) and isinstance(rhs, int):
                return {"+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                        "//": lhs // rhs if rhs else 0}[op]
            return BinOp(op, lhs, rhs)
        raise FrontendError(f"line {node.lineno}: unsupported index expression")

    # -- misc -------------------------------------------------------------------------------------

    def _check_array(self, name: str, lineno: int) -> None:
        if name not in self.sdfg.arrays:
            raise FrontendError(f"line {lineno}: unknown array {name!r}")

    def _new_state(self, label: str) -> State:
        state = State(f"s{self._state_counter}_{label}")
        self._state_counter += 1
        return state
