"""Compiled tasklet plans: the executor's map-specialization pass.

The simulator executor is the "runtime" half of code generation, and
its data path used to re-parse every tasklet's expression source with
``eval`` on every kernel execution.  This module compiles each tasklet
once and classifies its map:

``VECTORIZED``
    The expression is an affine elementwise/stencil combination of
    array subscripts (constant/symbolic slice bounds, arithmetic
    operators) — the whole map executes as a single NumPy slice
    expression, exactly like the hand-vectorized source the frontend
    parsed.

``SCALAR``
    The codegen-faithful fallback: the map runs point by point the way
    the emitted CUDA kernel would (one ``__i``-indexed evaluation per
    map point).  Only available for affine tasklets; used when
    vectorization is disabled and by the validation mode that asserts
    the two paths produce bit-identical arrays.

``GENERIC``
    Anything the affine analysis cannot prove (calls, unknown names,
    fancy indexing): evaluated as one compiled NumPy expression — the
    pre-existing semantics, minus the per-execution parse.

Bit-identity of VECTORIZED vs SCALAR holds because both evaluate the
same IEEE operation dag per element in the same order; NumPy's
elementwise kernels and Python's scalar float arithmetic agree to the
last ULP for ``+ - * /``.
"""

from __future__ import annotations

import ast
import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.obs.metrics import active_metrics
from repro.sdfg.memlet import Memlet, Range
from repro.sdfg.nodes import AccessNode, Tasklet

__all__ = [
    "FASTPATH_MODES",
    "MapMode",
    "StatePlan",
    "TaskletPlan",
    "active_fastpath_mode",
    "plan_state",
    "specialize_maps",
    "use_fastpath_mode",
]

#: legal executor tasklet-execution modes (see SDFGExecutor)
FASTPATH_MODES = ("vector", "scalar", "validate")

_active_mode = "vector"


def active_fastpath_mode() -> str:
    """The ambient tasklet-execution mode new executors default to."""
    return _active_mode


@contextmanager
def use_fastpath_mode(mode: str) -> Iterator[str]:
    """Install ``mode`` as the ambient fastpath mode for the block.

    Sweep code must *capture* the ambient mode into worker arguments in
    the main process (exactly like ``active_fault_profile()``): worker
    processes never inherit it, and the cache key must see it — a
    ``validate`` row and a ``vector`` row are bit-identical by design,
    but a stale-cache audit still wants distinct keys per mode.
    """
    global _active_mode
    if mode not in FASTPATH_MODES:
        raise ValueError(f"unknown fastpath mode {mode!r}")
    previous = _active_mode
    _active_mode = mode
    try:
        yield mode
    finally:
        _active_mode = previous

_ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)
_ALLOWED_UNARY = (ast.USub, ast.UAdd)

#: compile cache shared across executors (keyed by source text)
_CODE_CACHE: dict[str, Any] = {}
_EVAL_GLOBALS: dict[str, Any] = {"__builtins__": {}, "np": np}


def _compiled(source: str):
    code = _CODE_CACHE.get(source)
    if code is None:
        code = _CODE_CACHE[source] = compile(source, "<tasklet>", "eval")
    return code


class MapMode(enum.Enum):
    VECTORIZED = "vectorized"
    SCALAR = "scalar"
    GENERIC = "generic"


@dataclass(frozen=True)
class _ReadRef:
    """One affine array subscript in a tasklet expression."""

    array: str
    #: per-dim (kind, payload): ("slice", (start_src, stop_src)) with
    #: ``None`` meaning the axis end, or ("index", index_src)
    dims: tuple[tuple[str, Any], ...]
    #: placeholder base name this subscript was rewritten to
    token: str


class TaskletPlan:
    """Everything needed to execute one tasklet without re-parsing."""

    __slots__ = ("tasklet", "out_memlet", "mode", "vector_code", "scalar_code", "reads")

    def __init__(self, tasklet: Tasklet, out_memlet: Memlet, mode: MapMode,
                 vector_code, scalar_code, reads: tuple[_ReadRef, ...]) -> None:
        self.tasklet = tasklet
        self.out_memlet = out_memlet
        self.mode = mode
        self.vector_code = vector_code
        self.scalar_code = scalar_code
        self.reads = reads

    # -- execution -----------------------------------------------------------

    def run_vectorized(self, arrays: dict[str, np.ndarray],
                       bindings: dict[str, int]) -> None:
        """Whole-map NumPy slice execution (also the GENERIC path)."""
        shape = arrays[self.out_memlet.data].shape
        index = self.out_memlet.resolve(shape, bindings)
        namespace = {**arrays, **bindings}
        value = eval(self.vector_code, _EVAL_GLOBALS, namespace)  # noqa: S307
        arrays[self.out_memlet.data][index] = value

    def run_scalar(self, arrays: dict[str, np.ndarray],
                   bindings: dict[str, int]) -> None:
        """Point-by-point execution over the map's iteration space, the
        way the generated kernel walks it."""
        if self.scalar_code is None:
            raise ValueError(
                f"tasklet {self.tasklet.label!r} has no scalar plan (mode={self.mode})"
            )
        out = arrays[self.out_memlet.data]
        out_index = self.out_memlet.resolve(out.shape, bindings)
        # iteration axes: out dims that are slices; others are fixed
        starts, counts, axes = [], [], []
        fixed = list(out_index)
        for d, idx in enumerate(out_index):
            if isinstance(idx, slice):
                starts.append(idx.start)
                counts.append(idx.stop - idx.start)
                axes.append(d)
        namespace: dict[str, Any] = {**bindings}
        for read in self.reads:
            arr = arrays[read.array]
            namespace[read.token] = arr
            for d, (kind, payload) in enumerate(read.dims):
                size = arr.shape[d]
                if kind == "index":
                    value = eval(_compiled(payload), _EVAL_GLOBALS, bindings)  # noqa: S307
                    namespace[f"{read.token}_c{d}"] = value + size if value < 0 else value
                else:
                    start_src, _stop = payload
                    start = 0 if start_src is None else eval(  # noqa: S307
                        _compiled(start_src), _EVAL_GLOBALS, bindings)
                    if start < 0:
                        start += size
                    # scalar index along axis d: __i{d} + (read_start - out_start)
                    out_dim = out_index[d]
                    if not isinstance(out_dim, slice):
                        raise ValueError(
                            f"read slice of {read.array} along dim {d} has no "
                            f"matching map axis in {self.out_memlet}"
                        )
                    namespace[f"{read.token}_o{d}"] = start - out_dim.start
        code = self.scalar_code
        for point in np.ndindex(*counts):
            for k, axis in enumerate(axes):
                namespace[f"__i{axis}"] = starts[k] + point[k]
                fixed[axis] = starts[k] + point[k]
            out[tuple(fixed)] = eval(code, _EVAL_GLOBALS, namespace)  # noqa: S307


class StatePlan:
    """Compiled plans for every tasklet of one compute state."""

    __slots__ = ("plans",)

    def __init__(self, plans: tuple[TaskletPlan, ...]) -> None:
        self.plans = plans

    def execute(self, arrays: dict[str, np.ndarray], bindings: dict[str, int],
                *, mode: str = "vector") -> None:
        m = active_metrics()
        for plan in self.plans:
            if mode == "scalar" and plan.mode is not MapMode.GENERIC:
                taken = "scalar"
                plan.run_scalar(arrays, bindings)
            elif mode == "validate" and plan.mode is not MapMode.GENERIC:
                taken = "validate"
                _run_validated(plan, arrays, bindings)
            else:
                taken = "generic" if plan.mode is MapMode.GENERIC else "vectorized"
                plan.run_vectorized(arrays, bindings)
            if m is not None:
                _exec_counter(m, taken).inc()


#: resolved map_exec counters, keyed on registry identity — label
#: canonicalization is too slow for the per-map-execution path
_exec_memo: tuple[Any, dict[str, Any]] | None = None


def _exec_counter(m, taken: str):
    global _exec_memo
    if _exec_memo is None or _exec_memo[0] is not m:
        _exec_memo = (m, {})
    counter = _exec_memo[1].get(taken)
    if counter is None:
        counter = _exec_memo[1][taken] = m.counter("sdfg.fastpath.map_exec",
                                                   mode=taken)
    return counter


def _run_validated(plan: TaskletPlan, arrays: dict[str, np.ndarray],
                   bindings: dict[str, int]) -> None:
    """Run both paths; assert the fast path is bit-identical."""
    name = plan.out_memlet.data
    scratch = dict(arrays)
    scratch[name] = arrays[name].copy()
    plan.run_scalar(scratch, bindings)
    plan.run_vectorized(arrays, bindings)
    if not np.array_equal(arrays[name], scratch[name]):
        raise AssertionError(
            f"vectorized map for tasklet {plan.tasklet.label!r} diverged "
            f"from the scalar fallback"
        )


# ---------------------------- analysis ----------------------------------------


class _NotAffine(Exception):
    pass


class _Rewriter(ast.NodeTransformer):
    """Validate affinity and rewrite array subscripts to scalar form.

    ``A[1:-1, 2:]`` becomes ``A[__i0 + A_kN_o0, __i1 + A_kN_o1]`` where
    the ``*_o{d}`` offsets (read start minus map start, negatives
    resolved) are bound at execution time; integer-indexed dims become
    ``*_c{d}`` constants.
    """

    def __init__(self, arrays: dict[str, Any], symbols: set[str]) -> None:
        self.arrays = arrays
        self.symbols = symbols
        self.reads: list[_ReadRef] = []

    # structural whitelist -------------------------------------------------

    def visit_Expression(self, node):
        return ast.Expression(body=self.visit(node.body))

    def visit_BinOp(self, node):
        if not isinstance(node.op, _ALLOWED_BINOPS):
            raise _NotAffine(f"operator {type(node.op).__name__}")
        return ast.BinOp(left=self.visit(node.left), op=node.op,
                         right=self.visit(node.right))

    def visit_UnaryOp(self, node):
        if not isinstance(node.op, _ALLOWED_UNARY):
            raise _NotAffine(f"unary {type(node.op).__name__}")
        return ast.UnaryOp(op=node.op, operand=self.visit(node.operand))

    def visit_Constant(self, node):
        if not isinstance(node.value, (int, float)) or isinstance(node.value, bool):
            raise _NotAffine(f"constant {node.value!r}")
        return node

    def visit_Name(self, node):
        if node.id in self.arrays:
            raise _NotAffine(f"whole-array reference {node.id!r}")
        if node.id not in self.symbols:
            raise _NotAffine(f"unknown name {node.id!r}")
        return node

    def visit_Subscript(self, node):
        if not (isinstance(node.value, ast.Name) and node.value.id in self.arrays):
            raise _NotAffine("subscript of a non-array")
        array = node.value.id
        parts = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
        ndim = len(self.arrays[array].shape)
        if len(parts) != ndim:
            raise _NotAffine(f"{array}: partial index ({len(parts)} of {ndim} dims)")
        dims: list[tuple[str, Any]] = []
        scalar_dims: list[ast.expr] = []
        for d, part in enumerate(parts):
            if isinstance(part, ast.Slice):
                if part.step is not None:
                    raise _NotAffine("strided slice")
                start_src = None if part.lower is None else self._bound_src(part.lower)
                stop_src = None if part.upper is None else self._bound_src(part.upper)
                dims.append(("slice", (start_src, stop_src)))
            else:
                dims.append(("index", self._bound_src(part)))
        # dedupe identical subscripts; distinct ones get numbered tokens
        ref = _ReadRef(array, tuple(dims), "")
        for seen in self.reads:
            if (seen.array, seen.dims) == (ref.array, ref.dims):
                ref = seen
                break
        else:
            ref = _ReadRef(array, tuple(dims), f"__r{len(self.reads)}_{array}")
            self.reads.append(ref)
        for d, (kind, _payload) in enumerate(ref.dims):
            if kind == "slice":
                scalar_dims.append(ast.BinOp(
                    left=ast.Name(id=f"__i{d}", ctx=ast.Load()), op=ast.Add(),
                    right=ast.Name(id=f"{ref.token}_o{d}", ctx=ast.Load())))
            else:
                scalar_dims.append(ast.Name(id=f"{ref.token}_c{d}", ctx=ast.Load()))
        index: ast.expr = (ast.Tuple(elts=scalar_dims, ctx=ast.Load())
                           if len(scalar_dims) > 1 else scalar_dims[0])
        return ast.Subscript(value=ast.Name(id=ref.token, ctx=ast.Load()),
                             slice=index, ctx=ast.Load())

    def generic_visit(self, node):
        raise _NotAffine(f"unsupported syntax {type(node).__name__}")

    # helpers ---------------------------------------------------------------

    def _bound_src(self, node: ast.expr) -> str:
        """Bound expressions may use integers and scalar symbols only."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                if sub.id in self.arrays or sub.id not in self.symbols:
                    raise _NotAffine(f"index name {sub.id!r}")
            elif isinstance(sub, ast.BinOp):
                if not isinstance(sub.op, _ALLOWED_BINOPS):
                    raise _NotAffine("index operator")
            elif isinstance(sub, ast.UnaryOp):
                if not isinstance(sub.op, _ALLOWED_UNARY):
                    raise _NotAffine("index unary")
            elif isinstance(sub, ast.Constant):
                if not isinstance(sub.value, int) or isinstance(sub.value, bool):
                    raise _NotAffine("non-integer index")
            elif not isinstance(sub, (ast.expr_context, ast.operator, ast.unaryop)):
                raise _NotAffine(f"index syntax {type(sub).__name__}")
        return ast.unparse(node)


def _plan_tasklet(state, tasklet: Tasklet, sdfg) -> TaskletPlan:
    out_edge = next(
        e for e in state.edges
        if isinstance(e.dst, AccessNode) and e.memlet is not None
        and e.memlet.data == tasklet.output
    )
    out_memlet = out_edge.memlet
    vector_code = _compiled(tasklet.expr_source)
    symbols = set(sdfg.symbols) | set(sdfg.params)
    # map params of the enclosing scope are legal scalar names too
    for entry in state.map_entries:
        symbols.update(entry.params)
    for region in sdfg.walk_regions():
        var = getattr(region, "var", None)
        if var:
            symbols.add(var)
    try:
        tree = ast.parse(tasklet.expr_source, mode="eval")
        rewriter = _Rewriter(sdfg.arrays, symbols)
        scalar_tree = rewriter.visit(tree)
        # every read must be index-compatible with the written subset
        for ref in rewriter.reads:
            if ref.array == out_memlet.data:
                # in-place update: the scalar loop would read partially
                # written data, so keep the whole-expression semantics
                raise _NotAffine(f"{ref.array}: output read in place")
            if len(ref.dims) != len(out_memlet.subset):
                raise _NotAffine(f"{ref.array}: rank mismatch with output")
            for d, (kind, _payload) in enumerate(ref.dims):
                out_dim = out_memlet.subset[d]
                if kind == "slice" and not isinstance(out_dim, Range):
                    raise _NotAffine(f"{ref.array}: slice along scalar output dim {d}")
        scalar_src = ast.unparse(ast.fix_missing_locations(scalar_tree))
        scalar_code = _compiled(scalar_src)
        mode = MapMode.VECTORIZED
    except _NotAffine:
        scalar_code = None
        mode = MapMode.GENERIC
    return TaskletPlan(tasklet, out_memlet, mode, vector_code, scalar_code,
                       tuple(rewriter.reads) if mode is MapMode.VECTORIZED else ())


def plan_state(state, sdfg) -> StatePlan:
    """Get-or-build the compiled :class:`StatePlan` for ``state``."""
    plan = getattr(state, "_fastpath_plan", None)
    m = active_metrics()
    if plan is None:
        if m is not None:
            m.counter("sdfg.fastpath.plan_cache", outcome="miss").inc()
        plan = StatePlan(tuple(_plan_tasklet(state, t, sdfg) for t in state.tasklets))
        state._fastpath_plan = plan
    elif m is not None:
        m.counter("sdfg.fastpath.plan_cache", outcome="hit").inc()
    return plan


def specialize_maps(sdfg) -> dict[str, int]:
    """Precompile every compute state; returns mode counts (pass report)."""
    counts = {mode.value: 0 for mode in MapMode}
    for state in sdfg.walk_states():
        if not state.tasklets:
            continue
        for plan in plan_state(state, sdfg).plans:
            counts[plan.mode.value] += 1
    return counts
