"""Code generation backends.

- :mod:`repro.sdfg.codegen.cuda_text` — pseudo-CUDA source rendering,
  faithful to the thesis listings (5.5/5.6); used by tests and docs.
- :mod:`repro.sdfg.codegen.executor` — compiles the SDFG into host /
  device processes for the multi-GPU simulator, with real NumPy data,
  so generated programs are validated end-to-end and timed.
"""

from repro.sdfg.codegen.cuda_text import generate_cuda
from repro.sdfg.codegen.executor import ExecutionReport, SDFGExecutor

__all__ = ["ExecutionReport", "SDFGExecutor", "generate_cuda"]
