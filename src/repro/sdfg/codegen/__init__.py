"""Code generation backends.

- :mod:`repro.sdfg.codegen.cuda_text` — pseudo-CUDA source rendering,
  faithful to the thesis listings (5.5/5.6); used by tests and docs.
- :mod:`repro.sdfg.codegen.executor` — compiles the SDFG into host /
  device processes for the multi-GPU simulator, with real NumPy data,
  so generated programs are validated end-to-end and timed.
- :mod:`repro.sdfg.codegen.fastpath` — compiled tasklet plans and the
  map-specialization pass behind the executor's data path.
- :mod:`repro.sdfg.codegen.batch` — leading-batch-axis lowering of
  those plans: one fused NumPy kernel executes a map for a whole stack
  of sweep points.
"""

from repro.sdfg.codegen.batch import (
    BatchLoweringError,
    batch_state_plan,
    execute_batched,
)
from repro.sdfg.codegen.cuda_text import generate_cuda
from repro.sdfg.codegen.executor import ExecutionReport, SDFGExecutor
from repro.sdfg.codegen.fastpath import (
    MapMode,
    active_fastpath_mode,
    specialize_maps,
    use_fastpath_mode,
)

__all__ = [
    "BatchLoweringError",
    "ExecutionReport",
    "MapMode",
    "SDFGExecutor",
    "active_fastpath_mode",
    "batch_state_plan",
    "execute_batched",
    "generate_cuda",
    "specialize_maps",
    "use_fastpath_mode",
]
