"""Leading-batch-axis lowering of compiled tasklet plans.

The data-plane analogue of the vector-clock simulation in
:mod:`repro.stencil.batch`: run one compute state for ``B`` independent
argument sets as ONE fused NumPy kernel per map.  Per-member array sets
that agree on shapes and dtypes stack into a single array per name with
a leading batch axis (:func:`stack_arrays`); each ``VECTORIZED``
:class:`~repro.sdfg.codegen.fastpath.TaskletPlan` lowers to a variant
of its whole-map slice expression in which every array subscript is
prefixed with a full slice over that axis, so ``A[1:-1] * 0.5`` becomes
``A[:, 1:-1] * 0.5`` and evaluates for the whole stack at once.

Member rows of the batched result are byte-identical to per-point
execution: NumPy applies the same IEEE operation dag, elementwise, to
every row, and the lowering changes only *which* rows one call covers,
never the per-element expression.  ``GENERIC`` plans (calls, fancy
indexing — anything the affine analysis could not prove) refuse to
lower (:class:`BatchLoweringError`); callers fall back to per-point
execution, mirroring the
:class:`~repro.sim.stacked.BatchDivergence` contract of the simulation
plane.
"""

from __future__ import annotations

import ast
from typing import Any, Mapping, Sequence

import numpy as np

from repro.sdfg.codegen.fastpath import (
    MapMode,
    TaskletPlan,
    _compiled,
    _EVAL_GLOBALS,
    plan_state,
)

__all__ = [
    "BatchLoweringError",
    "BatchedStatePlan",
    "BatchedTaskletPlan",
    "batch_state_plan",
    "batch_tasklet_plan",
    "execute_batched",
    "stack_arrays",
    "uniform_bindings",
    "unstack_arrays",
]


class BatchLoweringError(Exception):
    """The state cannot execute as one batched NumPy kernel.

    Raised when a tasklet is ``GENERIC`` (unproven subscript structure
    — a leading batch axis could silently change its meaning) or when
    the member argument sets disagree on shape, dtype, or symbol
    bindings.  Callers fall back to per-point execution; batching is an
    optimization, never a semantic change.
    """


class _LeadingAxis(ast.NodeTransformer):
    """Prefix every array subscript with a full slice over the batch axis.

    Only applied to ``VECTORIZED`` expressions, whose affine analysis
    already proved that every ``Subscript`` is a full-rank index of an
    array (bound expressions contain names and integers only), so the
    rewrite touches exactly the array reads and nothing else.
    """

    def visit_Subscript(self, node: ast.Subscript) -> ast.Subscript:
        parts = (list(node.slice.elts) if isinstance(node.slice, ast.Tuple)
                 else [node.slice])
        batched = ast.Tuple(
            elts=[ast.Slice(lower=None, upper=None, step=None), *parts],
            ctx=ast.Load(),
        )
        return ast.Subscript(value=node.value, slice=batched, ctx=ast.Load())


class BatchedTaskletPlan:
    """One tasklet lowered to execute over a leading batch axis."""

    __slots__ = ("base", "batch_code", "batch_source")

    def __init__(self, base: TaskletPlan, batch_code: Any, batch_source: str) -> None:
        self.base = base
        self.batch_code = batch_code
        self.batch_source = batch_source

    def run(self, arrays: dict[str, np.ndarray], bindings: dict[str, int]) -> None:
        """Execute the map for every member of the stack at once.

        ``arrays`` maps each name to its stacked ``(B, *shape)`` array;
        the output memlet resolves against the *member* shape and the
        batch axis rides in front.
        """
        out = arrays[self.base.out_memlet.data]
        index = self.base.out_memlet.resolve(out.shape[1:], bindings)
        namespace = {**arrays, **bindings}
        value = eval(self.batch_code, _EVAL_GLOBALS, namespace)  # noqa: S307
        out[(slice(None), *index)] = value


class BatchedStatePlan:
    """Batched plans for every tasklet of one compute state."""

    __slots__ = ("plans",)

    def __init__(self, plans: tuple[BatchedTaskletPlan, ...]) -> None:
        self.plans = plans

    def execute(self, arrays: dict[str, np.ndarray], bindings: dict[str, int]) -> None:
        for plan in self.plans:
            plan.run(arrays, bindings)


def batch_tasklet_plan(plan: TaskletPlan) -> BatchedTaskletPlan:
    """Lower one compiled plan; ``VECTORIZED`` maps only."""
    if plan.mode is not MapMode.VECTORIZED:
        raise BatchLoweringError(
            f"tasklet {plan.tasklet.label!r} is {plan.mode.value}: only "
            f"affine (vectorized) maps take a leading batch axis"
        )
    tree = ast.parse(plan.tasklet.expr_source, mode="eval")
    batched = ast.fix_missing_locations(_LeadingAxis().visit(tree))
    source = ast.unparse(batched)
    return BatchedTaskletPlan(plan, _compiled(source), source)


def batch_state_plan(state, sdfg) -> BatchedStatePlan:
    """Get-or-build the batched plan for ``state`` (cached on the state,
    like the scalar/vector plan it extends)."""
    plan = getattr(state, "_batch_fastpath_plan", None)
    if plan is None:
        base = plan_state(state, sdfg)
        plan = BatchedStatePlan(tuple(batch_tasklet_plan(p) for p in base.plans))
        state._batch_fastpath_plan = plan
    return plan


# ---------------------------- stack / demux -----------------------------------


def stack_arrays(array_sets: Sequence[Mapping[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Stack per-member array dicts into ``(B, *shape)`` arrays.

    Every member must supply the same names with matching shapes and
    dtypes — the structural-compatibility precondition of a batch.
    """
    if not array_sets:
        raise BatchLoweringError("empty batch")
    names = set(array_sets[0])
    for m, arrays in enumerate(array_sets[1:], start=1):
        if set(arrays) != names:
            raise BatchLoweringError(
                f"member {m} array names {sorted(arrays)} != member 0 "
                f"{sorted(names)}"
            )
    stacked: dict[str, np.ndarray] = {}
    for name in sorted(names):
        first = np.asarray(array_sets[0][name])
        for m, arrays in enumerate(array_sets[1:], start=1):
            a = np.asarray(arrays[name])
            if a.shape != first.shape or a.dtype != first.dtype:
                raise BatchLoweringError(
                    f"array {name!r}: member {m} is {a.dtype}{a.shape}, "
                    f"member 0 is {first.dtype}{first.shape}"
                )
        stacked[name] = np.stack([np.asarray(a[name]) for a in array_sets])
    return stacked


def unstack_arrays(stacked: Mapping[str, np.ndarray], B: int) -> list[dict[str, np.ndarray]]:
    """Per-member array dicts (copies) from a stacked set."""
    return [{name: np.array(arr[m]) for name, arr in stacked.items()}
            for m in range(B)]


def uniform_bindings(bindings_seq: Sequence[Mapping[str, int]]) -> dict[str, int]:
    """The common symbol bindings of a batch; raise on any disagreement."""
    base = dict(bindings_seq[0])
    for m, other in enumerate(bindings_seq[1:], start=1):
        if dict(other) != base:
            raise BatchLoweringError(
                f"member {m} bindings {dict(other)} != member 0 {base}"
            )
    return base


def execute_batched(
    state,
    sdfg,
    array_sets: Sequence[Mapping[str, np.ndarray]],
    bindings: Mapping[str, int] | Sequence[Mapping[str, int]],
) -> list[dict[str, np.ndarray]]:
    """Run ``state`` once for a whole stack of argument sets.

    ``bindings`` is one mapping shared by every member, or a per-member
    sequence (which must be uniform).  Returns per-member result
    arrays, byte-identical to running the state per point.
    """
    if not isinstance(bindings, Mapping):
        bindings = uniform_bindings(bindings)
    B = len(array_sets)
    stacked = stack_arrays(array_sets)
    batch_state_plan(state, sdfg).execute(stacked, dict(bindings))
    return unstack_arrays(stacked, B)
