"""Pseudo-CUDA source rendering (thesis Listings 5.5/5.6 style).

Generates human-readable CUDA-like code from a transformed SDFG.  This
is the artifact half of code generation — useful for inspecting what
the pipeline produced and asserted on by tests (e.g. strided memlets
must lower to ``nvshmem_double_iput`` + ``nvshmem_quiet`` +
``nvshmemx_signal_op``).  The simulator executor is the semantic half.
"""

from __future__ import annotations

from repro.hw.memory import Storage
from repro.sdfg.graph import LoopRegion, Region, SDFG, Schedule, State
from repro.sdfg.libnodes.mpi import MPIBarrier, MPIIrecv, MPIIsend, MPIWaitall
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.memlet import AccessKind
from repro.sdfg.symbols import expr_to_str

__all__ = ["generate_cuda"]


def generate_cuda(sdfg: SDFG) -> str:
    """Render the SDFG as pseudo-CUDA source text."""
    persistent = any(
        r.schedule is Schedule.GPU_PERSISTENT for r in sdfg.walk_regions()
    )
    lines: list[str] = [f"// generated from SDFG {sdfg.name!r}", ""]
    _render_allocations(sdfg, lines)
    if persistent:
        _render_persistent(sdfg, lines)
    else:
        _render_discrete(sdfg, lines)
    return "\n".join(lines)


def _render_allocations(sdfg: SDFG, lines: list[str]) -> None:
    for name, desc in sdfg.arrays.items():
        shape = " * ".join(expr_to_str(s) for s in desc.shape)
        if desc.storage is Storage.SYMMETRIC:
            lines.append(f"double *{name} = (double*) nvshmem_malloc(({shape}) * sizeof(double));")
        elif desc.storage is Storage.GLOBAL:
            lines.append(f"double *{name}; cudaMalloc(&{name}, ({shape}) * sizeof(double));")
        else:
            lines.append(f"double *{name} = (double*) malloc(({shape}) * sizeof(double));")
    lines.append("")


# ----------------------------- discrete (baseline) -----------------------------


def _render_discrete(sdfg: SDFG, lines: list[str]) -> None:
    lines.append("// host-controlled (discrete kernels + MPI)")
    _render_region_host(sdfg, sdfg.body, lines, indent=0)


def _render_region_host(sdfg: SDFG, region: Region, lines: list[str], indent: int) -> None:
    pad = "    " * indent
    for el in region.elements:
        if isinstance(el, LoopRegion):
            lines.append(
                f"{pad}for (int {el.var} = {expr_to_str(el.start)}; "
                f"{el.var} < {expr_to_str(el.end)}; {el.var}++) {{"
            )
            _render_region_host(sdfg, el, lines, indent + 1)
            lines.append(f"{pad}}}")
        else:
            _render_state_host(sdfg, el, lines, pad)


def _render_state_host(sdfg: SDFG, state: State, lines: list[str], pad: str) -> None:
    if state.tasklets and state.map_entries:
        entry = state.map_entries[0]
        lines.append(
            f"{pad}{state.name}_kernel<<<grid, block, 0, stream>>>(...);"
            f"  // map {entry.range_str()}"
        )
        return
    for node in state.library_nodes:
        if isinstance(node, (MPIIsend, MPIIrecv)):
            expansion = node.expand(sdfg, _fake_bindings(sdfg))
            if expansion.stream_sync:
                lines.append(f"{pad}cudaStreamSynchronize(stream);")
            if expansion.staging_copy:
                lines.append(f"{pad}cudaMemcpy(tmp, {node.buffer!r}, ..., cudaMemcpyDeviceToDevice);")
            call = "MPI_Isend" if isinstance(node, MPIIsend) else "MPI_Irecv"
            datatype = "vector_t" if expansion.vector_datatype else "MPI_DOUBLE"
            lines.append(
                f"{pad}{call}(tmp, ..., {datatype}, {node.peer}, {node.tag}, "
                f"MPI_COMM_WORLD, &req[...]);"
            )
        elif isinstance(node, MPIWaitall):
            lines.append(f"{pad}MPI_Waitall(nreq, req, MPI_STATUSES_IGNORE);")
        elif isinstance(node, MPIBarrier):
            lines.append(f"{pad}MPI_Barrier(MPI_COMM_WORLD);")


# ----------------------------- persistent (CPU-Free) -----------------------------


def _render_persistent(sdfg: SDFG, lines: list[str]) -> None:
    lines.append(f"__global__ void {sdfg.name}_persistent(...) {{")
    lines.append("    cg::grid_group grid = cg::this_grid();")
    _render_region_device(sdfg, sdfg.body, lines, indent=1)
    lines.append("}")
    lines.append("")
    lines.append("// host: single cooperative launch")
    lines.append(
        f"cudaLaunchCooperativeKernel((void*){sdfg.name}_persistent, grid, block, args);"
    )


def _render_region_device(sdfg: SDFG, region: Region, lines: list[str], indent: int) -> None:
    pad = "    " * indent
    for el in region.elements:
        if isinstance(el, LoopRegion):
            lines.append(
                f"{pad}for (int {el.var} = {expr_to_str(el.start)}; "
                f"{el.var} < {expr_to_str(el.end)}; {el.var}++) {{"
            )
            _render_region_device(sdfg, el, lines, indent + 1)
            lines.append(f"{pad}}}")
        else:
            _render_state_device(sdfg, el, lines, pad)


def _render_state_device(sdfg: SDFG, state: State, lines: list[str], pad: str) -> None:
    if state.tasklets and state.map_entries:
        tasklet = state.tasklets[0]
        if getattr(tasklet, "is_copy", False):
            # §5.1: in-kernel array-to-array copy using GPU threads
            lines.append(f"{pad}device_parallel_copy({tasklet.output}, ...);  // all threads")
        else:
            lines.append(
                f"{pad}// map {state.map_entries[0].range_str()} over all threads"
            )
            lines.append(f"{pad}{tasklet.output}[__gidx] = {tasklet.expr_source};")
    for node in state.library_nodes:
        if isinstance(node, PutmemSignal):
            _render_putmem(sdfg, node, lines, pad)
        elif isinstance(node, SignalWait):
            lines.append(
                f"{pad}if (threadIdx.x == 0 && blockIdx.x == 0) "
                f"nvshmem_signal_wait_until(&flags[{node.flag_index}], "
                f"NVSHMEM_CMP_GE, {expr_to_str(node.value)});"
            )
    if getattr(state, "sync_after", False):
        lines.append(f"{pad}grid.sync();")


def _render_putmem(sdfg: SDFG, node: PutmemSignal, lines: list[str], pad: str) -> None:
    expansion = node.expand(sdfg, _fake_bindings(sdfg))
    guard = f"{pad}if (threadIdx.x == 0 && blockIdx.x == 0) "
    value = expr_to_str(node.signal_value)
    if expansion.kind == "p_mapped":
        # §5.3.2 Mapped specialization: grid-stride per-element puts
        lines.append(
            f"{pad}for (int __i = __gidx; __i < count; __i += __gridsize)"
        )
        lines.append(f"{pad}    nvshmem_double_p(&{node.dst!r}[__i], {node.src!r}[__i], {node.pe});")
        lines.append(guard + "nvshmem_quiet();")
        lines.append(
            guard + f"nvshmemx_signal_op(&flags[{node.flag_index}], {value}, "
            f"NVSHMEM_SIGNAL_SET, {node.pe});"
        )
        return
    if expansion.access is AccessKind.CONTIGUOUS:
        lines.append(
            guard + f"nvshmemx_putmem_signal_nbi_block({node.dst!r}, {node.src!r}, "
            f"nbytes, &flags[{node.flag_index}], {value}, NVSHMEM_SIGNAL_SET, {node.pe});"
        )
    elif expansion.access is AccessKind.STRIDED:
        lines.append(
            guard + f"nvshmem_double_iput({node.dst!r}, {node.src!r}, "
            f"dst_stride, src_stride, count, {node.pe});"
        )
        lines.append(guard + "nvshmem_quiet();")
        lines.append(
            guard + f"nvshmemx_signal_op(&flags[{node.flag_index}], {value}, "
            f"NVSHMEM_SIGNAL_SET, {node.pe});"
        )
    else:
        lines.append(guard + f"nvshmem_double_p({node.dst!r}, {node.src!r}, {node.pe});")
        lines.append(guard + "nvshmem_quiet();")
        lines.append(
            guard + f"nvshmemx_signal_op(&flags[{node.flag_index}], {value}, "
            f"NVSHMEM_SIGNAL_SET, {node.pe});"
        )


def _fake_bindings(sdfg: SDFG) -> dict[str, int]:
    """Nominal symbol values for shape classification in rendering.

    Access-kind classification only depends on which dimensions are
    ranged/full, so any reasonably large value works.
    """
    bindings = {name: 1024 for name in sdfg.symbols}
    bindings.update({name: 1 for name in sdfg.params if name not in bindings})
    return bindings
