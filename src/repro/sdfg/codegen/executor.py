"""Execute a (transformed) SDFG on the multi-GPU simulator.

The executor is the "runtime" half of code generation: it walks the
SDFG exactly as the emitted CUDA/C++ would execute and drives the
simulator accordingly.

Discrete mode (states scheduled ``GPU_DEVICE``) reproduces the DaCe
baseline of Fig. 5.1: per iteration, one kernel launch per compute
state; each MPI library node is preceded by a ``cudaStreamSynchronize``
and a device-to-device staging copy, then the host MPI call (with an
``MPI_Type_vector`` penalty for strided views); ``Waitall`` blocks the
host on all pending requests.

Persistent mode (loop scheduled ``GPU_PERSISTENT``) reproduces the
generated CPU-Free code of §5.3.2: a single cooperative kernel per
rank whose device loop runs the states back-to-back, communication
"scheduled in a single thread followed by a grid sync" — NVSHMEM ops
issue at *thread* scope (the generated code cannot use the
block-cooperative calls, §5.4), with barriers only on the relaxed
subgraph edges computed by the transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core import LocalSpinFlag, TBGroup, launch_persistent
from repro.nvshmem import NVSHMEMRuntime, WaitCond
from repro.nvshmem.device import Scope
from repro.runtime import Communicator, MultiGPUContext, VectorType
from repro.runtime.kernel import KernelSpec
from repro.sdfg.codegen.fastpath import FASTPATH_MODES, plan_state
from repro.sdfg.graph import LoopRegion, Region, SDFG, Schedule, State
from repro.sdfg.libnodes.mpi import MPI_PROC_NULL, MPIBarrier, MPIIrecv, MPIIsend, MPIWaitall
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.memlet import AccessKind, Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, Tasklet
from repro.sdfg.symbols import evaluate_expr
from repro.sdfg.transforms.mpi_to_nvshmem import FLAGS_ARRAY
from repro.hw.memory import Storage
from repro.sim import Tracer

__all__ = ["ExecutionReport", "SDFGExecutor"]


@dataclass
class ExecutionReport:
    """Timing and (optionally) data results of one SDFG execution."""

    total_time_us: float
    comm_time_us: float
    sync_time_us: float
    api_time_us: float
    iterations: int
    tracer: Tracer
    arrays: list[dict[str, np.ndarray]] | None

    @property
    def per_iteration_us(self) -> float:
        return self.total_time_us / max(1, self.iterations)


@dataclass
class _RankState:
    bindings: dict[str, int]
    arrays: dict[str, np.ndarray]
    pending: list = field(default_factory=list)


class SDFGExecutor:
    """Runs one SDFG SPMD across the node's GPUs."""

    def __init__(
        self,
        sdfg: SDFG,
        ctx: MultiGPUContext,
        *,
        with_data: bool = True,
        comm_scope: Scope = Scope.THREAD,
        fastpath: str = "vector",
    ) -> None:
        self.sdfg = sdfg
        self.ctx = ctx
        self.with_data = with_data
        #: tasklet execution mode: ``"vector"`` (specialized maps run as
        #: single NumPy slice expressions), ``"scalar"`` (codegen-faithful
        #: per-element loop), or ``"validate"`` (run both, assert
        #: bit-identical).  See :mod:`repro.sdfg.codegen.fastpath`.
        if fastpath not in FASTPATH_MODES:
            raise ValueError(f"unknown fastpath mode {fastpath!r}")
        self.fastpath = fastpath
        #: issuing-group scope for generated puts.  THREAD reproduces
        #: §5.3.2's single-thread scheduling; BLOCK models the §5.4
        #: future-work cooperative scheduling (ablation benchmarks).
        self.comm_scope = comm_scope
        self.persistent = any(
            r.schedule is Schedule.GPU_PERSISTENT for r in sdfg.walk_regions()
        )
        self.nvshmem = NVSHMEMRuntime(ctx) if self._uses_nvshmem() else None
        self.comm = Communicator(ctx) if self._uses_mpi() else None
        self._signals = None
        self._sym_arrays: dict[str, Any] = {}
        self._iterations = 0

    def _uses_nvshmem(self) -> bool:
        return any(
            isinstance(n, (PutmemSignal, SignalWait))
            for s in self.sdfg.walk_states() for n in s.library_nodes
        )

    def _uses_mpi(self) -> bool:
        return any(
            n.library == "MPI"
            for s in self.sdfg.walk_states() for n in s.library_nodes
        )

    # -- entry point --------------------------------------------------------------

    def run(self, rank_args: list[dict[str, Any]]) -> ExecutionReport:
        """``rank_args[r]`` maps array names to initial NumPy arrays and
        param/symbol names to ints for rank ``r``."""
        num_ranks = len(rank_args)
        if num_ranks > self.ctx.num_gpus:
            raise ValueError("more ranks than GPUs")
        if self.ctx.metrics is not None:
            self.ctx.metrics.counter(
                "sdfg.executor.runs",
                mode="persistent" if self.persistent else "discrete",
            ).inc()
        self._check_symmetric_shapes(rank_args)
        ranks = [self._prepare_rank(r, rank_args[r], num_ranks) for r in range(num_ranks)]
        self._count_iterations(ranks[0].bindings)
        for rank in range(num_ranks):
            if self.persistent:
                prog = self._persistent_host_program(rank, ranks[rank])
            else:
                prog = self._discrete_host_program(rank, ranks[rank])
            self.ctx.sim.spawn(prog, name=f"sdfg.host{rank}")
        total = self.ctx.run()
        tracer = self.ctx.tracer or Tracer()
        return ExecutionReport(
            total_time_us=total,
            comm_time_us=tracer.total("comm"),
            sync_time_us=tracer.total("sync"),
            api_time_us=tracer.total("api"),
            iterations=self._iterations,
            tracer=tracer,
            arrays=[r.arrays for r in ranks] if self.with_data else None,
        )

    # -- setup ------------------------------------------------------------------------

    def _check_symmetric_shapes(self, rank_args: list[dict[str, Any]]) -> None:
        """Symmetric (NVSHMEM) allocations must be identically shaped on
        every PE, which means every symbol a symmetric array's shape
        uses must agree across ranks.  Unequal slabs would silently
        corrupt remote writes, so reject them loudly (pad your domains,
        as real NVSHMEM codes do)."""
        from repro.sdfg.symbols import BinOp, Sym

        def collect(expr, out: set[str]) -> None:
            if isinstance(expr, Sym):
                out.add(expr.name)
            elif isinstance(expr, BinOp):
                collect(expr.lhs, out)
                collect(expr.rhs, out)

        symmetric_symbols: set[str] = set()
        for desc in self.sdfg.arrays.values():
            if desc.storage is Storage.SYMMETRIC and not desc.transient:
                for dim in desc.shape:
                    collect(dim, symmetric_symbols)
        for symbol in symmetric_symbols:
            values = {int(a[symbol]) for a in rank_args if symbol in a}
            if len(values) > 1:
                raise ValueError(
                    f"symmetric arrays require symbol {symbol!r} to be equal on "
                    f"every rank (got {sorted(values)}); pad the decomposition"
                )

    def _prepare_rank(self, rank: int, args: dict[str, Any], num_ranks: int) -> _RankState:
        bindings: dict[str, int] = {}
        arrays: dict[str, np.ndarray] = {}
        for name in list(self.sdfg.symbols) + self.sdfg.params:
            if name in args:
                bindings[name] = int(args[name])
        if self.with_data:
            for name, desc in self.sdfg.arrays.items():
                if desc.transient and name == FLAGS_ARRAY:
                    continue
                shape = tuple(evaluate_expr(s, bindings) for s in desc.shape)
                if desc.storage is Storage.SYMMETRIC and self.nvshmem is not None:
                    sym = self._sym_arrays.get(name)
                    if sym is None:
                        sym = self.nvshmem.malloc(name, shape, desc.dtype)
                        self._sym_arrays[name] = sym
                    view = sym.local(rank)
                else:
                    view = np.zeros(shape, dtype=desc.dtype)
                if name in args:
                    view[...] = args[name]
                arrays[name] = view
        # flags array (allocated by MPIToNVSHMEM) -> signal words
        if self.nvshmem is not None and FLAGS_ARRAY in self.sdfg.arrays and self._signals is None:
            n_flags = evaluate_expr(self.sdfg.arrays[FLAGS_ARRAY].shape[0], bindings)
            self._signals = self.nvshmem.malloc_signals("sdfg_flags", n_flags)
        return _RankState(bindings=bindings, arrays=arrays)

    def _count_iterations(self, bindings: dict[str, int]) -> None:
        loops = self.sdfg.loop_regions()
        if loops:
            loop = loops[0]
            lo = evaluate_expr(loop.start, bindings)
            hi = evaluate_expr(loop.end, bindings)
            self._iterations = max(1, hi - lo)
        else:
            self._iterations = 1

    def _shape_of(self, name: str, bindings: dict[str, int]) -> tuple[int, ...]:
        desc = self.sdfg.arrays[name]
        return tuple(evaluate_expr(s, bindings) for s in desc.shape)

    def _peer_rank(self, peer: str | int, bindings: dict[str, int]) -> int:
        return bindings[peer] if isinstance(peer, str) else int(peer)

    # ======================= discrete (baseline) path =======================

    def _discrete_host_program(self, rank: int, rs: _RankState):
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")

        def run_region(region: Region):
            for el in region.elements:
                if isinstance(el, LoopRegion):
                    lo = evaluate_expr(el.start, rs.bindings)
                    hi = evaluate_expr(el.end, rs.bindings)
                    for t in range(lo, hi):
                        rs.bindings[el.var] = t
                        yield from run_region(el)
                    rs.bindings.pop(el.var, None)
                else:
                    yield from self._run_state_host(el, rank, rs, host, stream)

        def body():
            yield from run_region(self.sdfg.body)
            # drain the device before reporting completion
            yield from host.stream_sync(stream)

        return body()

    def _run_state_host(self, state: State, rank: int, rs: _RankState, host, stream):
        tasklets = state.tasklets
        if tasklets and state.map_entries:
            yield from self._launch_compute_kernel(state, rank, rs, host, stream)
            return
        for node in state.library_nodes:
            if isinstance(node, (MPIIsend, MPIIrecv)):
                yield from self._run_mpi_p2p(node, state, rank, rs, host, stream)
            elif isinstance(node, MPIWaitall):
                assert self.comm is not None
                yield from self.comm.waitall(rank, rs.pending)
                rs.pending.clear()
            elif isinstance(node, MPIBarrier):
                assert self.comm is not None
                yield from self.comm.barrier(rank)
            else:
                raise TypeError(f"host path cannot execute {node!r}")

    def _launch_compute_kernel(self, state: State, rank: int, rs: _RankState, host, stream):
        volume = self._state_volume(state, rs.bindings)
        blocks = max(1, -(-volume // 1024))
        bindings_snapshot = dict(rs.bindings)

        def kernel(dev):
            yield from dev.compute(volume, name=state.name)
            if self.with_data:
                self._execute_tasklets(state, rs, bindings_snapshot)

        yield from host.launch(stream, KernelSpec(state.name, blocks=blocks), kernel)

    def _state_volume(self, state: State, bindings: dict[str, int]) -> int:
        """Elements written by this state's tasklets (timing basis)."""
        volume = 0
        for edge in state.edges:
            if isinstance(edge.dst, AccessNode) and edge.memlet is not None:
                shape = self._shape_of(edge.memlet.data, bindings)
                volume += edge.memlet.volume(shape, bindings)
        return max(1, volume)

    def _execute_tasklets(self, state: State, rs: _RankState, bindings: dict[str, int]) -> None:
        # Compiled fast path: tasklets are planned once per state (code
        # objects + map specialization) and replayed on every iteration.
        plan_state(state, self.sdfg).execute(rs.arrays, bindings, mode=self.fastpath)

    def _run_mpi_p2p(self, node, state: State, rank: int, rs: _RankState, host, stream):
        assert self.comm is not None
        peer = self._peer_rank(node.peer, rs.bindings)
        if peer == MPI_PROC_NULL:
            return
        expansion = node.expand(self.sdfg, rs.bindings)
        shape = self._shape_of(node.buffer.data, rs.bindings)
        nbytes = node.buffer.volume(shape, rs.bindings) * 8
        # Fig 5.1: generated stream sync + staging copy around each call
        if expansion.stream_sync:
            yield from host.stream_sync(stream)
        if expansion.staging_copy:
            yield from host.memcpy_async_modeled(stream, rank, rank, nbytes, name="stage")
            yield from host.stream_sync(stream)
        datatype = None
        if expansion.vector_datatype:
            lengths = node.buffer.dim_lengths(shape, rs.bindings)
            count = max(n for n in lengths)
            datatype = VectorType(count=count, blocklength=1, stride=shape[-1])
        if isinstance(node, MPIIsend):
            if self.with_data:
                index = node.buffer.resolve(shape, rs.bindings)
                values = np.array(rs.arrays[node.buffer.data][index])
            else:
                values = np.zeros(max(1, nbytes // 8))
            req = yield from self.comm.isend(rank, values, peer, node.tag, datatype)
        else:
            out = None
            if self.with_data:
                index = node.buffer.resolve(shape, rs.bindings)
                target = rs.arrays[node.buffer.data]
                view = target[index]
                out = view if isinstance(view, np.ndarray) else _ScalarProxy(target, index)
            req = yield from self.comm.irecv(
                rank, out, peer, node.tag, nbytes=nbytes, datatype=datatype
            )
        rs.pending.append(req)

    # ======================= persistent (CPU-Free) path =======================

    def _persistent_host_program(self, rank: int, rs: _RankState):
        elements = self.sdfg.body.elements
        if (len(elements) == 1 and isinstance(elements[0], LoopRegion)
                and getattr(elements[0], "comm_specialized", False)):
            return self._specialized_host_program(rank, rs, elements[0])
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")
        executor = self

        def group_body(dev, grid):
            def run_region(region: Region):
                for el in region.elements:
                    if isinstance(el, LoopRegion):
                        lo = evaluate_expr(el.start, rs.bindings)
                        hi = evaluate_expr(el.end, rs.bindings)
                        for t in range(lo, hi):
                            rs.bindings[el.var] = t
                            yield from run_region(el)
                        rs.bindings.pop(el.var, None)
                    else:
                        yield from executor._run_state_device(el, rank, rs, dev, grid)

            yield from run_region(self.sdfg.body)

        def body():
            blocks = self.ctx.node.gpu.max_coresident_blocks(1024)
            kernel = yield from launch_persistent(
                host, stream, f"{self.sdfg.name}_persistent",
                [TBGroup("program", blocks, group_body)],
            )
            yield from host.event_sync(kernel.event)

        return body()

    # -- §5.4 future work: TB-specialized generated code -------------------------

    def _specialized_host_program(self, rank: int, rs: _RankState, loop: LoopRegion):
        """Two specialized TB groups inside the generated persistent
        kernel: a comm group running the NVSHMEM states and a compute
        group running the map states, ordered by local-memory progress
        flags instead of grid-wide barriers (cf. §4.1.2 and §5.4)."""
        host = self.ctx.host(rank)
        stream = self.ctx.stream(rank, "stream")
        executor = self

        # partition the loop body into alternating comm/comp runs
        runs: list[tuple[str, list[State]]] = []
        for el in loop.elements:
            if not isinstance(el, State):
                raise TypeError("comm-specialized loops cannot nest regions")
            group = getattr(el, "tb_group", "comp")
            if runs and runs[-1][0] == group:
                runs[-1][1].append(el)
            else:
                runs.append((group, [el]))
        per_iter = {"comm": sum(1 for g, _ in runs if g == "comm"),
                    "comp": sum(1 for g, _ in runs if g == "comp")}
        poll = self.ctx.cost.host_flag_poll_us
        progress = {
            "comm": LocalSpinFlag(self.ctx.sim, poll, name=f"gpu{rank}.comm_prog"),
            "comp": LocalSpinFlag(self.ctx.sim, poll, name=f"gpu{rank}.comp_prog"),
        }
        lo = evaluate_expr(loop.start, rs.bindings)
        hi = evaluate_expr(loop.end, rs.bindings)
        # per-group loop-variable bindings (the groups progress
        # independently through iterations)
        group_bindings = {g: dict(rs.bindings) for g in ("comm", "comp")}

        def make_group(which: str):
            other = "comm" if which == "comp" else "comp"

            def body(dev, grid):
                done = 0
                for k, t in enumerate(range(lo, hi)):
                    group_bindings[which][loop.var] = t
                    earlier_other = 0
                    for group, states in runs:
                        if group != which:
                            earlier_other += 1
                            continue
                        # all earlier other-group runs (this and past
                        # iterations) must have completed
                        yield from progress[other].wait_until(
                            k * per_iter[other] + earlier_other
                        )
                        local = _RankState(group_bindings[which], rs.arrays, rs.pending)
                        for state in states:
                            yield from executor._run_state_device(
                                state, rank, local, dev, grid, use_grid_sync=False
                            )
                        done += 1
                        progress[which].post(done)
                # drain: let the other group finish its final runs
                yield from progress[other].wait_until((hi - lo) * per_iter[other])

            return body

        def host_body():
            total = self.ctx.node.gpu.max_coresident_blocks(1024)
            comm_blocks = max(1, min(4, total - 1))
            groups = [
                TBGroup("comm", comm_blocks, make_group("comm")),
                TBGroup("comp", total - comm_blocks, make_group("comp")),
            ]
            kernel = yield from launch_persistent(
                host, stream, f"{self.sdfg.name}_persistent_specialized", groups
            )
            yield from host.event_sync(kernel.event)

        return host_body()

    def _run_state_device(self, state: State, rank: int, rs: _RankState, dev, grid,
                          use_grid_sync: bool = True):
        if state.tasklets and state.map_entries:
            volume = self._state_volume(state, rs.bindings)
            yield from dev.compute(volume, name=state.name)
            if self.with_data:
                self._execute_tasklets(state, rs, dict(rs.bindings))
        for node in state.library_nodes:
            if isinstance(node, PutmemSignal):
                yield from self._run_putmem_signal(node, rank, rs, dev)
            elif isinstance(node, SignalWait):
                yield from self._run_signal_wait(node, rank, rs, dev)
            else:
                raise TypeError(f"device path cannot execute {node!r}")
        if use_grid_sync and getattr(state, "sync_after", True):
            yield from grid.wait()

    def _run_putmem_signal(self, node: PutmemSignal, rank: int, rs: _RankState, dev):
        assert self.nvshmem is not None and self._signals is not None
        peer = self._peer_rank(node.pe, rs.bindings)
        if peer == MPI_PROC_NULL:
            return
        nv = self.nvshmem.device(rank, lane=dev.lane)
        expansion = node.expand(self.sdfg, rs.bindings)
        src_shape = self._shape_of(node.src.data, rs.bindings)
        dst_shape = self._shape_of(node.dst.data, rs.bindings)
        nbytes = node.src.volume(src_shape, rs.bindings) * 8
        signaled = node.flag_index is not None
        value = evaluate_expr(node.signal_value, rs.bindings) if signaled else 0
        dst_sym = self._sym_arrays.get(node.dst.data) if self.with_data else None
        dst_index = node.dst.resolve(dst_shape, rs.bindings) if self.with_data else None
        if self.with_data:
            src_index = node.src.resolve(src_shape, rs.bindings)
            values = np.array(rs.arrays[node.src.data][src_index])
        else:
            values = 0.0
        # §5.3.2: generated code issues from a single thread by default
        if expansion.access is AccessKind.CONTIGUOUS:
            if signaled:
                put = nv.putmem_signal_nbi if node.nbi else nv.putmem_signal
                yield from put(
                    dst_sym, dst_index, values, self._signals, node.flag_index,
                    value, dest_pe=peer, nbytes=nbytes, scope=self.comm_scope,
                    name=f"put:{node.src.data}",
                )
            else:  # unsignaled put: data moves, nobody is notified
                put = nv.putmem_nbi if node.nbi else nv.putmem
                yield from put(
                    dst_sym, dst_index, values, dest_pe=peer, nbytes=nbytes,
                    scope=self.comm_scope, name=f"put:{node.src.data}",
                )
        elif expansion.kind == "p_mapped":
            yield from nv.p_mapped(
                dst_sym, dst_index,
                np.atleast_1d(values).ravel() if self.with_data else values,
                dest_pe=peer, elements=max(1, nbytes // 8),
                name=f"p_mapped:{node.src.data}",
            )
            yield from nv.quiet()
            if signaled:
                yield from nv.signal_op(self._signals, node.flag_index, value, dest_pe=peer)
        elif expansion.access is AccessKind.STRIDED:
            yield from nv.iput(
                dst_sym, dst_index, np.atleast_1d(values).ravel() if self.with_data else values,
                dest_pe=peer, elements=max(1, nbytes // 8), name=f"iput:{node.src.data}",
            )
            yield from nv.quiet()
            if signaled:
                yield from nv.signal_op(self._signals, node.flag_index, value, dest_pe=peer)
        else:  # scalar
            scalar = float(np.asarray(values).reshape(-1)[0]) if self.with_data else 0.0
            yield from nv.p(dst_sym, dst_index, scalar, dest_pe=peer,
                            name=f"p:{node.src.data}")
            yield from nv.quiet()
            if signaled:
                yield from nv.signal_op(self._signals, node.flag_index, value, dest_pe=peer)

    def _run_signal_wait(self, node: SignalWait, rank: int, rs: _RankState, dev):
        assert self.nvshmem is not None and self._signals is not None
        # SPMD: skip the wait when the matching sender is PROC_NULL —
        # generated code guards on the peer parameter. The peer of a
        # wait is the conjugate side's parameter; we detect "no sender"
        # by checking whether any signal could arrive: the flag stays 0
        # for edge ranks. Generated code uses the same guard variable
        # as the original Irecv; we reconstruct it from the pairing
        # stored at transform time when available.
        guard = getattr(node, "peer_param", None)
        if guard is not None:
            if self._peer_rank(guard, rs.bindings) == MPI_PROC_NULL:
                return
        nv = self.nvshmem.device(rank, lane=dev.lane)
        value = evaluate_expr(node.value, rs.bindings)
        yield from nv.signal_wait_until(
            self._signals, node.flag_index, WaitCond.GE, value
        )


class _ScalarProxy:
    """NumPy-ish single-element receive target (``A[0] = value``)."""

    def __init__(self, array: np.ndarray, index: Any) -> None:
        self.array = array
        self.index = index
        self.nbytes = array.dtype.itemsize

    def __setitem__(self, _ignored: Any, value: Any) -> None:
        self.array[self.index] = np.asarray(value).reshape(-1)[0]

    @property
    def shape(self) -> tuple[int, ...]:
        return (1,)
