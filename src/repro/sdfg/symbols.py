"""Symbolic sizes for array shapes, map ranges, and loop bounds.

A deliberately small expression language: symbols, integers, and
``+ - * //`` combinations, evaluated against a binding dict at
compile/execution time.  This covers everything the paper's stencil
programs need (``N``, ``N - 1``, ``TSTEPS``...) without dragging in a
computer-algebra system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["Expr", "Sym", "evaluate_expr", "expr_to_str"]


class _ExprOps:
    """Mixin giving symbolic nodes arithmetic operators."""

    def __add__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("*", _wrap(other), self)

    def __floordiv__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("//", self, _wrap(other))


@dataclass(frozen=True)
class Sym(_ExprOps):
    """A named integer symbol (array size, loop bound, rank param)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(_ExprOps):
    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


Expr = Union[int, Sym, BinOp]


def _wrap(value) -> Expr:  # type: ignore[no-untyped-def]
    if isinstance(value, (int, Sym, BinOp)):
        return value
    raise TypeError(f"cannot use {type(value).__name__} in a symbolic expression")


#: globals for memoized BinOp evaluation — no builtins reachable
_EVAL_GLOBALS: dict[str, object] = {"__builtins__": {}}


def _compile_binop(expr: "BinOp"):
    """Compile a BinOp tree to a Python code object, once per instance.

    Expressions are built once (shapes, memlets, loop bounds) but
    evaluated inside per-iteration loops, so the parse/lowering cost is
    paid a single time and cached on the (frozen) node via its
    ``__dict__``.  Python's own integer arithmetic matches the
    recursive evaluator exactly, ``//`` included.
    """
    code = compile(expr_to_str(expr), "<sym>", "eval")
    object.__setattr__(expr, "_eval_code", code)
    return code


def evaluate_expr(expr: Expr, bindings: dict[str, int]) -> int:
    """Evaluate ``expr`` with symbol values from ``bindings``."""
    t = type(expr)
    if t is int:
        return expr
    if t is Sym:
        try:
            return int(bindings[expr.name])
        except KeyError:
            raise KeyError(f"unbound symbol {expr.name!r}") from None
    if t is BinOp:
        code = expr.__dict__.get("_eval_code")
        if code is None:
            _validate_ops(expr)
            code = _compile_binop(expr)
        try:
            return int(eval(code, _EVAL_GLOBALS, bindings))  # noqa: S307
        except NameError as exc:
            raise KeyError(f"unbound symbol {exc.name!r}") from None
    if t is bool:
        raise TypeError("booleans are not symbolic expressions")
    if isinstance(expr, int) and not isinstance(expr, bool):
        return int(expr)
    raise TypeError(f"not a symbolic expression: {expr!r}")


def _validate_ops(expr: Expr) -> None:
    """Reject unknown operators before compiling (error parity with
    the old recursive evaluator)."""
    if isinstance(expr, BinOp):
        if expr.op not in ("+", "-", "*", "//"):
            raise ValueError(f"unknown operator {expr.op!r}")
        _validate_ops(expr.lhs)
        _validate_ops(expr.rhs)
    elif not isinstance(expr, (int, Sym)) or isinstance(expr, bool):
        raise TypeError(f"not a symbolic expression: {expr!r}")


def expr_to_str(expr: Expr) -> str:
    """Render an expression for generated code / debug output."""
    if isinstance(expr, int):
        return str(expr)
    if isinstance(expr, Sym):
        return expr.name
    if isinstance(expr, BinOp):
        return f"({expr_to_str(expr.lhs)} {expr.op} {expr_to_str(expr.rhs)})"
    raise TypeError(f"not a symbolic expression: {expr!r}")
