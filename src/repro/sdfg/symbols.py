"""Symbolic sizes for array shapes, map ranges, and loop bounds.

A deliberately small expression language: symbols, integers, and
``+ - * //`` combinations, evaluated against a binding dict at
compile/execution time.  This covers everything the paper's stencil
programs need (``N``, ``N - 1``, ``TSTEPS``...) without dragging in a
computer-algebra system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["Expr", "Sym", "evaluate_expr", "expr_to_str"]


class _ExprOps:
    """Mixin giving symbolic nodes arithmetic operators."""

    def __add__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("*", _wrap(other), self)

    def __floordiv__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("//", self, _wrap(other))


@dataclass(frozen=True)
class Sym(_ExprOps):
    """A named integer symbol (array size, loop bound, rank param)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(_ExprOps):
    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


Expr = Union[int, Sym, BinOp]


def _wrap(value) -> Expr:  # type: ignore[no-untyped-def]
    if isinstance(value, (int, Sym, BinOp)):
        return value
    raise TypeError(f"cannot use {type(value).__name__} in a symbolic expression")


def evaluate_expr(expr: Expr, bindings: dict[str, int]) -> int:
    """Evaluate ``expr`` with symbol values from ``bindings``."""
    if isinstance(expr, bool):
        raise TypeError("booleans are not symbolic expressions")
    if isinstance(expr, int):
        return expr
    if isinstance(expr, Sym):
        try:
            return int(bindings[expr.name])
        except KeyError:
            raise KeyError(f"unbound symbol {expr.name!r}") from None
    if isinstance(expr, BinOp):
        lhs = evaluate_expr(expr.lhs, bindings)
        rhs = evaluate_expr(expr.rhs, bindings)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "//":
            return lhs // rhs
        raise ValueError(f"unknown operator {expr.op!r}")
    raise TypeError(f"not a symbolic expression: {expr!r}")


def expr_to_str(expr: Expr) -> str:
    """Render an expression for generated code / debug output."""
    if isinstance(expr, int):
        return str(expr)
    if isinstance(expr, Sym):
        return expr.name
    if isinstance(expr, BinOp):
        return f"({expr_to_str(expr.lhs)} {expr.op} {expr_to_str(expr.rhs)})"
    raise TypeError(f"not a symbolic expression: {expr!r}")
