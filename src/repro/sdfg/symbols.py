"""Symbolic sizes for array shapes, map ranges, and loop bounds.

A deliberately small expression language: symbols, integers, and
``+ - * //`` combinations, evaluated against a binding dict at
compile/execution time.  This covers everything the paper's stencil
programs need (``N``, ``N - 1``, ``TSTEPS``...) without dragging in a
computer-algebra system.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Union

__all__ = [
    "Expr",
    "Sym",
    "code_cache_stats",
    "evaluate_expr",
    "expr_to_str",
    "publish_code_cache_stats",
]


class _ExprOps:
    """Mixin giving symbolic nodes arithmetic operators."""

    def __add__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("*", _wrap(other), self)

    def __floordiv__(self, other):  # type: ignore[no-untyped-def]
        return BinOp("//", self, _wrap(other))


@dataclass(frozen=True)
class Sym(_ExprOps):
    """A named integer symbol (array size, loop bound, rank param)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(_ExprOps):
    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


Expr = Union[int, Sym, BinOp]


def _wrap(value) -> Expr:  # type: ignore[no-untyped-def]
    if isinstance(value, (int, Sym, BinOp)):
        return value
    raise TypeError(f"cannot use {type(value).__name__} in a symbolic expression")


#: globals for memoized BinOp evaluation — no builtins reachable
_EVAL_GLOBALS: dict[str, object] = {"__builtins__": {}}

#: bounded shared compile cache, keyed by rendered source.  Nodes keep
#: a direct reference to their code object (the per-evaluation fast
#: path), but the *index* is LRU-bounded: autotuner-style sweeps that
#: build fresh expression trees per point reuse structurally equal
#: entries instead of compiling per instance, and a sweep over
#: unboundedly many distinct shapes cannot grow the index without
#: limit.
CODE_CACHE_CAPACITY = 512
_CODE_LRU: "OrderedDict[str, object]" = OrderedDict()
_code_cache_hits = 0
_code_cache_misses = 0
_code_cache_evictions = 0


def _compile_binop(expr: "BinOp"):
    """Code object for a BinOp tree, via the bounded shared cache.

    Expressions are built once (shapes, memlets, loop bounds) but
    evaluated inside per-iteration loops, so the parse/lowering cost is
    paid a single time and cached on the (frozen) node via its
    ``__dict__``.  Python's own integer arithmetic matches the
    recursive evaluator exactly, ``//`` included.
    """
    global _code_cache_hits, _code_cache_misses, _code_cache_evictions
    src = expr_to_str(expr)
    code = _CODE_LRU.get(src)
    if code is not None:
        _code_cache_hits += 1
        _CODE_LRU.move_to_end(src)
    else:
        _code_cache_misses += 1
        _validate_ops(expr)
        code = compile(src, "<sym>", "eval")
        _CODE_LRU[src] = code
        if len(_CODE_LRU) > CODE_CACHE_CAPACITY:
            _CODE_LRU.popitem(last=False)
            _code_cache_evictions += 1
    object.__setattr__(expr, "_eval_code", code)
    return code


def code_cache_stats() -> dict[str, float]:
    """Size, capacity, and hit/miss/eviction counts of the bounded
    expression-compile cache (process-lifetime totals)."""
    total = _code_cache_hits + _code_cache_misses
    return {
        "size": len(_CODE_LRU),
        "capacity": CODE_CACHE_CAPACITY,
        "hits": _code_cache_hits,
        "misses": _code_cache_misses,
        "evictions": _code_cache_evictions,
        "hit_rate": _code_cache_hits / total if total else 0.0,
    }


def publish_code_cache_stats(registry) -> None:
    """Set ``sdfg.symbols.code_cache.*`` gauges on ``registry``.

    Called on demand (never from the sweep path itself): the stats are
    process-lifetime, so folding them into per-run registries would
    break the byte-identical metrics-dump contract.
    """
    for key, value in code_cache_stats().items():
        registry.gauge(f"sdfg.symbols.code_cache.{key}").set(value)


def evaluate_expr(expr: Expr, bindings: dict[str, int]) -> int:
    """Evaluate ``expr`` with symbol values from ``bindings``."""
    t = type(expr)
    if t is int:
        return expr
    if t is Sym:
        try:
            return int(bindings[expr.name])
        except KeyError:
            raise KeyError(f"unbound symbol {expr.name!r}") from None
    if t is BinOp:
        code = expr.__dict__.get("_eval_code")
        if code is None:
            code = _compile_binop(expr)
        try:
            return int(eval(code, _EVAL_GLOBALS, bindings))  # noqa: S307
        except NameError as exc:
            raise KeyError(f"unbound symbol {exc.name!r}") from None
    if t is bool:
        raise TypeError("booleans are not symbolic expressions")
    if isinstance(expr, int) and not isinstance(expr, bool):
        return int(expr)
    raise TypeError(f"not a symbolic expression: {expr!r}")


def _validate_ops(expr: Expr) -> None:
    """Reject unknown operators before compiling (error parity with
    the old recursive evaluator)."""
    if isinstance(expr, BinOp):
        if expr.op not in ("+", "-", "*", "//"):
            raise ValueError(f"unknown operator {expr.op!r}")
        _validate_ops(expr.lhs)
        _validate_ops(expr.rhs)
    elif not isinstance(expr, (int, Sym)) or isinstance(expr, bool):
        raise TypeError(f"not a symbolic expression: {expr!r}")


def expr_to_str(expr: Expr) -> str:
    """Render an expression for generated code / debug output."""
    if isinstance(expr, int):
        return str(expr)
    if isinstance(expr, Sym):
        return expr.name
    if isinstance(expr, BinOp):
        return f"({expr_to_str(expr.lhs)} {expr.op} {expr_to_str(expr.rhs)})"
    raise TypeError(f"not a symbolic expression: {expr!r}")
