"""Static communication lint over SDFGs — the sanitizer's compile-time half.

:func:`lint_communication` inspects the lowered NVSHMEM communication
structure of an SDFG and reports protocol shapes that are legal IR but
almost always synchronization bugs at runtime.  It complements the
dynamic happens-before detector (:mod:`repro.sanitize`): the detector
proves a *particular execution* raced, the lint flags programs whose
*structure* cannot be ordered no matter how the execution goes.

Four rules (one finding per offending node, deterministic order):

``unsignaled-put-racy-read``
    A :class:`PutmemSignal` with ``flag_index=None`` inside a time
    loop whose destination array is read somewhere in the same loop
    body.  Nothing tells the destination PE the data landed, so the
    next iteration's read races the in-flight put.

``unmatched-wait``
    A :class:`SignalWait` whose flag index no put in the program
    signals — the wait can never be satisfied (reported by
    :func:`repro.sdfg.validation.validate` as a hard error; the lint
    reports it as a finding so ``repro.sanitize lint`` can show all
    problems at once instead of stopping at the first).

``src-reuse-before-quiet``
    A non-blocking put whose source array is overwritten by a later
    state in the same loop body with no intervening synchronization
    point (a blocking put or a ``SignalWait`` — the quiet/ordering
    points this IR has).  The rewrite can overtake the in-flight read
    of the source buffer.

``mismatched-signal-pair``
    A flag index whose produced signal-value expression differs from
    the value expression some wait on that flag compares against —
    the §4.1.1 iteration-semaphore protocol with the two legs counting
    different things.

Findings do not raise; callers decide (the CI gate fails on any).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sdfg.graph import LoopRegion, Region, SDFG, State
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.symbols import expr_to_str

__all__ = ["LintFinding", "lint_communication"]


@dataclass(frozen=True)
class LintFinding:
    """One static finding: a rule violated at a location."""

    rule: str      #: rule slug (see module docstring)
    location: str  #: "state-name/subject" — where in the SDFG
    message: str   #: human-readable explanation

    @property
    def finding_id(self) -> str:
        """Stable id for suppressions: ``<rule>:<location>``."""
        return f"{self.rule}:{self.location}"

    def describe(self) -> dict:
        return {
            "id": self.finding_id,
            "kind": "lint",
            "rule": self.rule,
            "location": self.location,
            "message": self.message,
        }

    def summary(self) -> str:
        return f"[{self.rule}] {self.location}: {self.message}"


@dataclass(frozen=True)
class _Site:
    """A library node at its position in a loop body's state order."""

    pos: int
    state: State
    node: PutmemSignal | SignalWait


def _loop_sites(region: LoopRegion) -> tuple[list[_Site], list[State]]:
    """Communication nodes and states of a loop body, in walk order
    (nested loops contribute at their position in the parent)."""
    states = list(region.walk_states())
    sites = [
        _Site(pos, state, node)
        for pos, state in enumerate(states)
        for node in state.library_nodes
        if isinstance(node, (PutmemSignal, SignalWait))
    ]
    return sites, states


def lint_communication(sdfg: SDFG) -> list[LintFinding]:
    """Run all four rules; findings in deterministic walk order."""
    findings: list[LintFinding] = []

    produced: dict[int, list[PutmemSignal]] = {}
    for state in sdfg.walk_states():
        for node in state.library_nodes:
            if isinstance(node, PutmemSignal) and node.flag_index is not None:
                produced.setdefault(node.flag_index, []).append(node)

    for region in sdfg.walk_regions():
        if not isinstance(region, LoopRegion):
            continue
        sites, states = _loop_sites(region)
        loop_reads = set().union(*(s.reads() for s in states)) if states else set()

        for site in sites:
            node = site.node
            if not isinstance(node, PutmemSignal):
                continue
            # -- unsignaled-put-racy-read ---------------------------------
            if node.flag_index is None and node.dst.data in loop_reads:
                findings.append(LintFinding(
                    "unsignaled-put-racy-read",
                    f"{site.state.name}/{node.dst.data}",
                    f"unsignaled put into {node.dst.data!r} (pe {node.pe}) "
                    f"whose destination is read in the {region.var} loop "
                    f"body; the next iteration's read races the in-flight "
                    f"put — signal it and wait on the flag",
                ))
            # -- src-reuse-before-quiet -----------------------------------
            if node.nbi:
                finding = _check_src_reuse(region, site, sites, states)
                if finding is not None:
                    findings.append(finding)

    # -- unmatched-wait / mismatched-signal-pair --------------------------
    for state in sdfg.walk_states():
        for node in state.library_nodes:
            if not isinstance(node, SignalWait):
                continue
            puts = produced.get(node.flag_index)
            if not puts:
                findings.append(LintFinding(
                    "unmatched-wait",
                    f"{state.name}/flag{node.flag_index}",
                    f"SignalWait on flag {node.flag_index} has no producer: "
                    f"no PutmemSignal in the program signals that index; "
                    f"the wait can never be satisfied",
                ))
                continue
            want = expr_to_str(node.value)
            got = sorted({expr_to_str(p.signal_value) for p in puts})
            if want not in got:
                findings.append(LintFinding(
                    "mismatched-signal-pair",
                    f"{state.name}/flag{node.flag_index}",
                    f"SignalWait on flag {node.flag_index} compares against "
                    f"{want!r} but its producer(s) signal "
                    f"{', '.join(repr(g) for g in got)}; the two legs of the "
                    f"semaphore protocol count different things",
                ))
    return findings


def _check_src_reuse(
    region: LoopRegion, put_site: _Site, sites: list[_Site], states: list[State]
) -> LintFinding | None:
    """Is ``put_site``'s source overwritten later in the loop body with
    no synchronization point in between?

    Synchronization points are blocking puts and ``SignalWait`` states
    — after either, previously issued non-blocking transfers have been
    ordered (the protocol's quiet/flag handshake).  A write *before*
    the put is not a hazard: the put simply reads the updated buffer.
    """
    put = put_site.node
    assert isinstance(put, PutmemSignal)
    src = put.src.data
    put_group = getattr(put_site.state, "overlap_group", None)
    for pos in range(put_site.pos + 1, len(states)):
        state = states[pos]
        if src in state.writes():
            if put_group is not None and (
                    getattr(state, "overlap_group", None) == put_group):
                # auto-overlap chunk (transforms.overlap): writes rows
                # disjoint from the relocated put's boundary row — the
                # transform certified the split, not a reuse hazard
                continue
            sync_between = any(
                put_site.pos < s.pos < pos
                and (isinstance(s.node, SignalWait)
                     or (isinstance(s.node, PutmemSignal) and not s.node.nbi))
                for s in sites
            )
            if sync_between:
                return None
            return LintFinding(
                "src-reuse-before-quiet",
                f"{put_site.state.name}/{src}",
                f"non-blocking put reads {src!r} but state {state.name} "
                f"overwrites it later in the {region.var} loop body with no "
                f"synchronization point in between; the rewrite can overtake "
                f"the in-flight transfer",
            )
    return None
