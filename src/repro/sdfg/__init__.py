"""A from-scratch data-centric compiler framework (DaCe-like).

Reproduces the compiler-support contribution of the paper's Chapter 5:
high-level Python stencils are parsed into a Stateful DataFlow
multiGraph IR (states, access nodes, maps, memlets, tasklets, library
nodes), transformed by pattern-matching passes, and lowered either to

- **discrete CPU-controlled GPU code** (the DaCe baseline: one kernel
  launch per map, MPI library nodes with stream syncs and staging
  copies), or
- **CPU-Free persistent code** (``GPUPersistentKernel`` fusion +
  ``MPIToNVSHMEM`` lowering + ``NVSHMEMArray`` storage), matching the
  pipeline of §6.2.

Two backends consume the lowered SDFG: a pseudo-CUDA source generator
(faithful to the thesis listings, used by tests and docs) and an
executable plan for the multi-GPU simulator (used by the benchmarks,
with real NumPy data so results validate against a reference).
"""

from repro.sdfg.symbols import Sym, evaluate_expr
from repro.sdfg.memlet import AccessKind, Memlet
from repro.sdfg.graph import (
    ArrayDesc,
    LoopRegion,
    Schedule,
    SDFG,
    State,
)
from repro.sdfg.nodes import (
    AccessNode,
    LibraryNode,
    MapEntry,
    MapExit,
    Tasklet,
)
from repro.sdfg.frontend import program
from repro.sdfg.serialize import sdfg_from_json, sdfg_to_json
from repro.sdfg.validation import SDFGValidationError, validate

__all__ = [
    "AccessKind",
    "AccessNode",
    "ArrayDesc",
    "LibraryNode",
    "LoopRegion",
    "MapEntry",
    "MapExit",
    "Memlet",
    "SDFG",
    "SDFGValidationError",
    "Schedule",
    "State",
    "Sym",
    "Tasklet",
    "evaluate_expr",
    "program",
    "sdfg_from_json",
    "sdfg_to_json",
    "validate",
]
