"""The SDFG container: arrays, states, control-flow regions.

Control flow follows modern DaCe's region model: an :class:`SDFG` owns
a top-level region whose elements are :class:`State` (a dataflow
multigraph executed once) or :class:`LoopRegion` (a sequential loop of
nested elements — the stencil time loop).  A
``GPUPersistentKernel``-transformed loop region carries
``Schedule.GPU_PERSISTENT`` and executes entirely on the device.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Union

import numpy as np

from repro.hw.memory import Storage
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, LibraryNode, MapEntry, MapExit, Node, Tasklet
from repro.sdfg.symbols import Expr, Sym, expr_to_str

__all__ = ["ArrayDesc", "Edge", "LoopRegion", "Region", "SDFG", "Schedule", "State"]


class Schedule(enum.Enum):
    """Where a state/map/region executes."""

    CPU = "cpu"
    GPU_DEVICE = "gpu_device"          #: discrete GPU kernel per map
    GPU_PERSISTENT = "gpu_persistent"  #: fused persistent cooperative kernel


@dataclass
class ArrayDesc:
    """An array container: shape (possibly symbolic), dtype, storage."""

    name: str
    shape: tuple[Expr, ...]
    dtype: type = np.float64
    storage: Storage = Storage.HOST
    transient: bool = False

    @property
    def ndim(self) -> int:
        return len(self.shape)


@dataclass(frozen=True)
class Edge:
    """Dataflow edge carrying an optional memlet."""

    src: Node
    dst: Node
    memlet: Memlet | None = None


class State:
    """One dataflow multigraph, executed once per reaching of the state."""

    def __init__(self, name: str, schedule: Schedule = Schedule.CPU) -> None:
        self.name = name
        self.schedule = schedule
        self.nodes: list[Node] = []
        self.edges: list[Edge] = []

    # -- construction --------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        self.nodes.append(node)
        return node

    def add_edge(self, src: Node, dst: Node, memlet: Memlet | None = None) -> Edge:
        if src not in self.nodes or dst not in self.nodes:
            raise ValueError("edge endpoints must be added to the state first")
        edge = Edge(src, dst, memlet)
        self.edges.append(edge)
        return edge

    # -- queries -----------------------------------------------------------------

    def in_edges(self, node: Node) -> list[Edge]:
        return [e for e in self.edges if e.dst is node]

    def out_edges(self, node: Node) -> list[Edge]:
        return [e for e in self.edges if e.src is node]

    def nodes_of(self, kind: type) -> list[Node]:
        return [n for n in self.nodes if isinstance(n, kind)]

    @property
    def library_nodes(self) -> list[LibraryNode]:
        return [n for n in self.nodes if isinstance(n, LibraryNode)]

    @property
    def tasklets(self) -> list[Tasklet]:
        return [n for n in self.nodes if isinstance(n, Tasklet)]

    @property
    def map_entries(self) -> list[MapEntry]:
        return [n for n in self.nodes if isinstance(n, MapEntry)]

    def writes(self) -> set[str]:
        """Array names written in this state (edges into access nodes)."""
        return {
            e.dst.data for e in self.edges
            if isinstance(e.dst, AccessNode) and e.memlet is not None
        }

    def reads(self) -> set[str]:
        """Array names read in this state (edges out of access nodes)."""
        return {
            e.src.data for e in self.edges
            if isinstance(e.src, AccessNode) and e.memlet is not None
        }

    def __repr__(self) -> str:
        return f"<State {self.name} ({len(self.nodes)} nodes, {self.schedule.value})>"


class Region:
    """An ordered sequence of states and nested regions."""

    def __init__(self, schedule: Schedule = Schedule.CPU) -> None:
        self.schedule = schedule
        self.elements: list[Union[State, "LoopRegion"]] = []

    def add(self, element: Union[State, "LoopRegion"]):
        self.elements.append(element)
        return element

    def walk_states(self) -> Iterator[State]:
        for el in self.elements:
            if isinstance(el, State):
                yield el
            else:
                yield from el.walk_states()


class LoopRegion(Region):
    """A sequential loop ``for var in range(start, end)`` of elements."""

    def __init__(self, var: str, start: Expr, end: Expr,
                 schedule: Schedule = Schedule.CPU) -> None:
        super().__init__(schedule)
        self.var = var
        self.start = start
        self.end = end

    def trip_count_str(self) -> str:
        return f"for {self.var} in [{expr_to_str(self.start)}, {expr_to_str(self.end)})"

    def __repr__(self) -> str:
        return f"<LoopRegion {self.trip_count_str()} ({len(self.elements)} elements)>"


class SDFG:
    """Top-level program container."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.arrays: dict[str, ArrayDesc] = {}
        self.symbols: dict[str, Sym] = {}
        self.params: list[str] = []  #: scalar runtime parameters (ranks, tags)
        self.body = Region()

    # -- declarations --------------------------------------------------------------

    def add_symbol(self, name: str) -> Sym:
        sym = self.symbols.get(name)
        if sym is None:
            sym = Sym(name)
            self.symbols[name] = sym
        return sym

    def add_array(
        self,
        name: str,
        shape: tuple[Expr, ...],
        dtype: type = np.float64,
        storage: Storage = Storage.HOST,
        transient: bool = False,
    ) -> ArrayDesc:
        if name in self.arrays:
            raise ValueError(f"array {name!r} already declared")
        desc = ArrayDesc(name, shape, dtype, storage, transient)
        self.arrays[name] = desc
        return desc

    def add_param(self, name: str) -> None:
        if name not in self.params:
            self.params.append(name)

    # -- queries --------------------------------------------------------------------

    def walk_states(self) -> Iterator[State]:
        return self.body.walk_states()

    def walk_regions(self) -> Iterator[Region]:
        """All regions, including nested loop regions."""
        def rec(region: Region) -> Iterator[Region]:
            yield region
            for el in region.elements:
                if isinstance(el, Region):
                    yield from rec(el)
        return rec(self.body)

    def loop_regions(self) -> list[LoopRegion]:
        return [r for r in self.walk_regions() if isinstance(r, LoopRegion)]

    def describe(self) -> str:
        """Human-readable structural dump (tests & debugging)."""
        lines = [f"SDFG {self.name}"]
        for name, desc in self.arrays.items():
            shape = " x ".join(expr_to_str(s) for s in desc.shape)
            lines.append(f"  array {name}[{shape}] {desc.storage.value}"
                         + (" transient" if desc.transient else ""))

        def rec(region: Region, indent: int) -> None:
            pad = "  " * indent
            for el in region.elements:
                if isinstance(el, LoopRegion):
                    lines.append(f"{pad}{el.trip_count_str()} [{el.schedule.value}]")
                    rec(el, indent + 1)
                else:
                    lines.append(f"{pad}state {el.name} [{el.schedule.value}]")
                    for node in el.nodes:
                        lines.append(f"{pad}  {node!r}")

        rec(self.body, 1)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<SDFG {self.name}>"
