"""SDFG serialization to/from JSON.

Real DaCe stores SDFGs as ``.sdfg`` JSON files that tools (the web
viewer, transformations, test fixtures) exchange; this module provides
the same capability for this reproduction's IR.  The format is a plain
nested-dict encoding of every node/edge/region and round-trips all
constructs the pipelines produce — including transformation results
(schedules, storage classes, ``sync_after`` flags, TB groups).
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.hw.memory import Storage
from repro.sdfg.graph import ArrayDesc, LoopRegion, Region, SDFG, Schedule, State
from repro.sdfg.libnodes.mpi import MPIBarrier, MPIIrecv, MPIIsend, MPIWaitall
from repro.sdfg.libnodes.nvshmem import PutmemSignal, SignalWait
from repro.sdfg.memlet import Memlet, Range, _FULL
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Node, Tasklet
from repro.sdfg.symbols import BinOp, Expr, Sym

__all__ = ["SerializationError", "sdfg_from_json", "sdfg_to_json"]

_DTYPES = {"float64": np.float64, "float32": np.float32,
           "int64": np.int64, "int32": np.int32}


class SerializationError(ValueError):
    """The JSON does not encode a valid SDFG."""


# ------------------------------ expressions ------------------------------------


def _expr_to_obj(expr: Expr) -> Any:
    if isinstance(expr, int):
        return expr
    if isinstance(expr, Sym):
        return {"sym": expr.name}
    if isinstance(expr, BinOp):
        return {"op": expr.op, "lhs": _expr_to_obj(expr.lhs),
                "rhs": _expr_to_obj(expr.rhs)}
    raise SerializationError(f"cannot serialize expression {expr!r}")


def _expr_from_obj(obj: Any) -> Expr:
    if isinstance(obj, bool) or not isinstance(obj, (int, dict)):
        raise SerializationError(f"bad expression object {obj!r}")
    if isinstance(obj, int):
        return obj
    if "sym" in obj:
        return Sym(obj["sym"])
    return BinOp(obj["op"], _expr_from_obj(obj["lhs"]), _expr_from_obj(obj["rhs"]))


def _memlet_to_obj(memlet: Memlet) -> dict:
    dims = []
    for dim in memlet.subset:
        if isinstance(dim, Range):
            stop = None if dim.stop is _FULL else _expr_to_obj(dim.stop)
            dims.append({"range": [_expr_to_obj(dim.start), stop]})
        else:
            dims.append({"index": _expr_to_obj(dim)})
    return {"data": memlet.data, "subset": dims}


def _memlet_from_obj(obj: dict) -> Memlet:
    dims = []
    for dim in obj["subset"]:
        if "range" in dim:
            start, stop = dim["range"]
            dims.append(Range(_expr_from_obj(start),
                              _FULL if stop is None else _expr_from_obj(stop)))
        else:
            dims.append(_expr_from_obj(dim["index"]))
    return Memlet(obj["data"], tuple(dims))


# ------------------------------ nodes ------------------------------------------


def _node_to_obj(node: Node) -> dict:
    if isinstance(node, AccessNode):
        return {"kind": "access", "data": node.data}
    if isinstance(node, MapEntry):
        return {
            "kind": "map_entry", "label": node.label, "params": node.params,
            "ranges": [[_expr_to_obj(lo), _expr_to_obj(hi)] for lo, hi in node.ranges],
        }
    if isinstance(node, MapExit):
        return {"kind": "map_exit"}
    if isinstance(node, Tasklet):
        return {
            "kind": "tasklet", "label": node.label, "expr": node.expr_source,
            "inputs": node.inputs, "output": node.output,
            "is_copy": getattr(node, "is_copy", False),
        }
    if isinstance(node, MPIIsend):
        return {"kind": "mpi_isend", "buffer": _memlet_to_obj(node.buffer),
                "peer": node.peer, "tag": node.tag}
    if isinstance(node, MPIIrecv):
        return {"kind": "mpi_irecv", "buffer": _memlet_to_obj(node.buffer),
                "peer": node.peer, "tag": node.tag}
    if isinstance(node, MPIWaitall):
        return {"kind": "mpi_waitall"}
    if isinstance(node, MPIBarrier):
        return {"kind": "mpi_barrier"}
    if isinstance(node, PutmemSignal):
        return {
            "kind": "putmem_signal", "dst": _memlet_to_obj(node.dst),
            "src": _memlet_to_obj(node.src), "flag": node.flag_index,
            "value": _expr_to_obj(node.signal_value), "pe": node.pe,
            "nbi": node.nbi, "implementation": node.implementation,
        }
    if isinstance(node, SignalWait):
        return {
            "kind": "signal_wait", "flag": node.flag_index,
            "value": _expr_to_obj(node.value),
            "peer_param": getattr(node, "peer_param", None),
        }
    raise SerializationError(f"cannot serialize node {node!r}")


def _node_from_obj(obj: dict, pending_exit: list) -> Node:
    kind = obj["kind"]
    if kind == "access":
        return AccessNode(obj["data"])
    if kind == "map_entry":
        entry = MapEntry(
            obj["label"], obj["params"],
            [(_expr_from_obj(lo), _expr_from_obj(hi)) for lo, hi in obj["ranges"]],
        )
        pending_exit.append(entry)
        return entry
    if kind == "map_exit":
        if not pending_exit:
            raise SerializationError("map_exit without a preceding map_entry")
        return MapExit(pending_exit.pop())
    if kind == "tasklet":
        tasklet = Tasklet(obj["label"], obj["expr"], obj["inputs"], obj["output"])
        tasklet.is_copy = obj.get("is_copy", False)
        return tasklet
    if kind == "mpi_isend":
        return MPIIsend(_memlet_from_obj(obj["buffer"]), obj["peer"], obj["tag"])
    if kind == "mpi_irecv":
        return MPIIrecv(_memlet_from_obj(obj["buffer"]), obj["peer"], obj["tag"])
    if kind == "mpi_waitall":
        return MPIWaitall()
    if kind == "mpi_barrier":
        return MPIBarrier()
    if kind == "putmem_signal":
        return PutmemSignal(
            _memlet_from_obj(obj["dst"]), _memlet_from_obj(obj["src"]),
            obj["flag"], _expr_from_obj(obj["value"]), obj["pe"],
            nbi=obj.get("nbi", True),
            implementation=obj.get("implementation", "auto"),
        )
    if kind == "signal_wait":
        wait = SignalWait(obj["flag"], _expr_from_obj(obj["value"]))
        if obj.get("peer_param") is not None:
            wait.peer_param = obj["peer_param"]
        return wait
    raise SerializationError(f"unknown node kind {kind!r}")


# ------------------------------ states & regions -------------------------------


def _state_to_obj(state: State) -> dict:
    node_ids = {node: i for i, node in enumerate(state.nodes)}
    return {
        "kind": "state",
        "name": state.name,
        "schedule": state.schedule.value,
        "sync_after": getattr(state, "sync_after", None),
        "tb_group": getattr(state, "tb_group", None),
        "nodes": [_node_to_obj(n) for n in state.nodes],
        "edges": [
            {
                "src": node_ids[e.src], "dst": node_ids[e.dst],
                "memlet": _memlet_to_obj(e.memlet) if e.memlet else None,
            }
            for e in state.edges
        ],
    }


def _state_from_obj(obj: dict) -> State:
    state = State(obj["name"], Schedule(obj["schedule"]))
    if obj.get("sync_after") is not None:
        state.sync_after = obj["sync_after"]
    if obj.get("tb_group") is not None:
        state.tb_group = obj["tb_group"]
    pending_exit: list = []
    nodes = [state.add_node(_node_from_obj(n, pending_exit)) for n in obj["nodes"]]
    for edge in obj["edges"]:
        memlet = _memlet_from_obj(edge["memlet"]) if edge["memlet"] else None
        state.add_edge(nodes[edge["src"]], nodes[edge["dst"]], memlet)
    return state


def _region_elements_to_obj(region: Region) -> list:
    out = []
    for el in region.elements:
        if isinstance(el, LoopRegion):
            out.append({
                "kind": "loop",
                "var": el.var,
                "start": _expr_to_obj(el.start),
                "end": _expr_to_obj(el.end),
                "schedule": el.schedule.value,
                "comm_specialized": getattr(el, "comm_specialized", False),
                "elements": _region_elements_to_obj(el),
            })
        else:
            out.append(_state_to_obj(el))
    return out


def _region_elements_from_obj(objs: list, region: Region) -> None:
    for obj in objs:
        if obj["kind"] == "loop":
            loop = LoopRegion(obj["var"], _expr_from_obj(obj["start"]),
                              _expr_from_obj(obj["end"]),
                              Schedule(obj["schedule"]))
            loop.comm_specialized = obj.get("comm_specialized", False)
            _region_elements_from_obj(obj["elements"], loop)
            region.add(loop)
        elif obj["kind"] == "state":
            region.add(_state_from_obj(obj))
        else:
            raise SerializationError(f"unknown region element {obj['kind']!r}")


# ------------------------------ entry points ------------------------------------


def sdfg_to_json(sdfg: SDFG, *, indent: int | None = None) -> str:
    """Serialize an SDFG to a JSON string."""
    doc = {
        "format": "repro-sdfg-v1",
        "name": sdfg.name,
        "symbols": sorted(sdfg.symbols),
        "params": list(sdfg.params),
        "arrays": [
            {
                "name": desc.name,
                "shape": [_expr_to_obj(s) for s in desc.shape],
                "dtype": np.dtype(desc.dtype).name,
                "storage": desc.storage.value,
                "transient": desc.transient,
            }
            for desc in sdfg.arrays.values()
        ],
        "body": _region_elements_to_obj(sdfg.body),
    }
    return json.dumps(doc, indent=indent)


def sdfg_from_json(text: str) -> SDFG:
    """Reconstruct an SDFG from :func:`sdfg_to_json` output."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"not valid JSON: {exc}") from exc
    if doc.get("format") != "repro-sdfg-v1":
        raise SerializationError(f"unknown format {doc.get('format')!r}")
    sdfg = SDFG(doc["name"])
    for name in doc["symbols"]:
        sdfg.add_symbol(name)
    for name in doc["params"]:
        sdfg.add_param(name)
    for arr in doc["arrays"]:
        dtype = _DTYPES.get(arr["dtype"])
        if dtype is None:
            raise SerializationError(f"unsupported dtype {arr['dtype']!r}")
        sdfg.add_array(
            arr["name"], tuple(_expr_from_obj(s) for s in arr["shape"]),
            dtype=dtype, storage=Storage(arr["storage"]),
            transient=arr["transient"],
        )
    _region_elements_from_obj(doc["body"], sdfg.body)
    return sdfg
